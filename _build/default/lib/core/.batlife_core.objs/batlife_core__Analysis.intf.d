lib/core/analysis.mli: Lifetime
