lib/core/grid.ml: Float
