lib/core/kibamrm.ml: Batlife_battery Batlife_workload Kibam Model
