lib/core/discretized.ml: Array Batlife_battery Batlife_ctmc Batlife_numerics Batlife_workload Generator Grid Iterative Kibam Kibamrm Logs Model Sparse Transient Vector
