lib/core/lifetime.ml: Array Batlife_ctmc Batlife_numerics Discretized Float Interp List Quadrature Transient
