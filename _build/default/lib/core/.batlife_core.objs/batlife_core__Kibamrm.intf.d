lib/core/kibamrm.mli: Batlife_battery Batlife_workload Kibam Model
