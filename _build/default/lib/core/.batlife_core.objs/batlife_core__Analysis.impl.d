lib/core/analysis.ml: Array Float Lifetime
