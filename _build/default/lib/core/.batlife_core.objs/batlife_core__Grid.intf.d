lib/core/grid.mli:
