lib/core/discretized.mli: Batlife_ctmc Generator Grid Kibamrm Transient
