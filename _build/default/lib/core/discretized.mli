(** The Markovian approximation (Section 5): expansion of the KiBaMRM
    into a pure CTMC over [workload-state x charge levels].

    Three transition families populate the generator [Q*]:

    - {b workload} transitions [(i,j1,j2) -> (i',j1,j2)] at the
      original rate [Q_{i,i'}];
    - {b consumption} transitions [(i,j1,j2) -> (i,j1-1,j2)] at rate
      [I_i / delta];
    - {b well transfer} transitions [(i,j1,j2) -> (i,j1+1,j2-1)] at
      rate [k (j2/(1-c) - j1/c)] whenever [h2 >= h1].

    States with [j1 = 0] (battery empty) are absorbing.  The flat
    state layout puts them in the leading block, so the probability of
    being empty is the mass of a prefix of the transient vector. *)

open Batlife_ctmc

type t = private {
  model : Kibamrm.t;
  grid : Grid.t;
  generator : Generator.t;
  alpha : float array;  (** initial distribution over flat states *)
}

val build :
  ?initial_fill:float * float ->
  ?absorb_empty:bool ->
  delta:float ->
  Kibamrm.t ->
  t
(** Expand the model with step [delta].  [initial_fill] overrides the
    initial well contents [(a1, a2)] (default: full battery,
    [(cC, (1-c)C)]).  Construction is linear in the number of
    transitions.

    [absorb_empty] (default [true]) makes the [j1 = 0] states
    absorbing, matching the paper's lifetime definition (first hit of
    an empty available well).  Setting it to [false] enables the
    variant the paper mentions in Section 5.2: the empty states keep
    their workload and well-transfer transitions, so a device that
    tolerates brown-outs can recover; {!empty_probability} then
    reports the (non-monotone) probability of being empty {e at} time
    [t] rather than {e by} time [t]. *)

val n_states : t -> int

val nnz : t -> int
(** Nonzero entries of [Q*] including the diagonal. *)

val empty_probability :
  ?accuracy:float ->
  t ->
  times:float array ->
  float array * Transient.stats
(** [Pr{battery empty at time t}] for each requested time — the
    lifetime distribution [Pr{L <= t}] — from a single uniformisation
    sweep. *)

val state_distribution : ?accuracy:float -> t -> time:float -> float array
(** Full transient distribution over the flat states at one time. *)

val available_charge_marginal :
  ?accuracy:float -> t -> time:float -> (float * float) array
(** Marginal distribution of the available-charge level at [time]:
    pairs [(lower end of the level interval, probability)], in
    increasing charge order (index 0, charge 0, is the empty/absorbed
    mass). *)

val mode_marginal : ?accuracy:float -> t -> time:float -> float array
(** Marginal distribution over the workload modes at [time] (for the
    absorbing model this is the mode in which the battery died, for
    already-absorbed mass). *)

val expected_available_charge : ?accuracy:float -> t -> time:float -> float
(** [E Y1(t)] approximated with each level's lower interval end (the
    representative the expanded generator uses); absorbed mass
    contributes 0. *)

val joint_probability :
  ?accuracy:float -> t -> time:float -> mode:int -> min_charge:float -> float
(** [P(X(t) = mode and Y1(t) > min_charge)] — the joint
    state-and-reward measure of the paper's Eq. (2), evaluated on the
    grid (levels whose lower end is at least [min_charge] count). *)

val expected_lifetime : ?tol:float -> t -> float
(** Exact (no time grid, no Poisson truncation) expected absorption
    time of the expanded chain: solves the first-passage system
    [Q* tau = -1] on the transient states by Gauss–Seidel and returns
    [alpha . tau].  Requires the absorbing variant
    ([absorb_empty = true]); raises [Invalid_argument] otherwise. *)
