type t = { delta : float; levels1 : int; levels2 : int; n_workload : int }

let levels_for bound delta =
  (* Levels 0 .. ceil(bound/delta); the top level is reachable by the
     well-transfer transition (j1 < u1/delta allows entering
     j1 = u1/delta). *)
  let n = int_of_float (Float.ceil ((bound /. delta) -. 1e-9)) in
  max n 0 + 1

let create ~delta ~u1 ~u2 ~n_workload =
  if delta <= 0. then invalid_arg "Grid.create: non-positive delta";
  if u1 <= 0. then invalid_arg "Grid.create: non-positive u1";
  if u2 < 0. then invalid_arg "Grid.create: negative u2";
  if n_workload <= 0 then invalid_arg "Grid.create: no workload states";
  {
    delta;
    levels1 = levels_for u1 delta;
    levels2 = (if u2 = 0. then 1 else levels_for u2 delta);
    n_workload;
  }

let total_states g = g.levels1 * g.levels2 * g.n_workload

let index g ~state ~j1 ~j2 =
  if state < 0 || state >= g.n_workload then
    invalid_arg "Grid.index: workload state out of range";
  if j1 < 0 || j1 >= g.levels1 then invalid_arg "Grid.index: j1 out of range";
  if j2 < 0 || j2 >= g.levels2 then invalid_arg "Grid.index: j2 out of range";
  (((j1 * g.levels2) + j2) * g.n_workload) + state

let decompose g idx =
  if idx < 0 || idx >= total_states g then
    invalid_arg "Grid.decompose: index out of range";
  let state = idx mod g.n_workload in
  let rest = idx / g.n_workload in
  let j2 = rest mod g.levels2 in
  let j1 = rest / g.levels2 in
  (state, j1, j2)

let raw_level g a =
  if a < 0. then invalid_arg "Grid.level_of: negative reward";
  if a = 0. then 0
  else int_of_float (Float.ceil ((a /. g.delta) -. 1e-9)) - 1

let level_of1 g a = min (max (raw_level g a) 0) (g.levels1 - 1)

let level_of2 g a = min (max (raw_level g a) 0) (g.levels2 - 1)

let level_value g j = float_of_int (j + 1) *. g.delta

let absorbing_block_size g = g.levels2 * g.n_workload
