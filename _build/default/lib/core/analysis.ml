let check_same_grid (a : Lifetime.curve) (b : Lifetime.curve) =
  if
    Array.length a.Lifetime.times <> Array.length b.Lifetime.times
    || not
         (Array.for_all2
            (fun x y -> x = y)
            a.Lifetime.times b.Lifetime.times)
  then invalid_arg "Analysis: curves on different time grids"

let max_pointwise_distance a b =
  check_same_grid a b;
  let d = ref 0. in
  Array.iteri
    (fun i p ->
      d := Float.max !d (Float.abs (p -. b.Lifetime.probabilities.(i))))
    a.Lifetime.probabilities;
  !d

let refinement_distances curves =
  let rec go = function
    | a :: (b :: _ as rest) -> max_pointwise_distance a b :: go rest
    | [ _ ] | [] -> []
  in
  go curves

let empirical_order curves =
  match (refinement_distances curves, curves) with
  | d1 :: d2 :: _, c1 :: c2 :: _ when d1 > 0. && d2 > 0. ->
      let ratio = c1.Lifetime.delta /. c2.Lifetime.delta in
      if ratio > 1. then Some (log (d1 /. d2) /. log ratio) else None
  | _ -> None

let richardson ?(order = 1.) ~coarse fine =
  check_same_grid coarse fine;
  if fine.Lifetime.delta >= coarse.Lifetime.delta then
    invalid_arg "Analysis.richardson: fine curve must have smaller delta";
  let factor = Float.pow 2. order in
  let raw =
    Array.mapi
      (fun i pf ->
        ((factor *. pf) -. coarse.Lifetime.probabilities.(i))
        /. (factor -. 1.))
      fine.Lifetime.probabilities
  in
  (* Clamp and monotonise: extrapolation can overshoot [0, 1]. *)
  let running = ref 0. in
  let probabilities =
    Array.map
      (fun p ->
        running := Float.max !running (Float.min 1. (Float.max 0. p));
        !running)
      raw
  in
  { fine with Lifetime.probabilities }
