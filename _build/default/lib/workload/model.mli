(** Stochastic workload models (Section 4.3 of the paper).

    A workload model is a CTMC over the operating modes of the device,
    each state annotated with its energy-consumption rate [I_i].
    Combined with a battery model it forms the KiBaMRM. *)

open Batlife_ctmc

type t = private {
  generator : Generator.t;
  currents : float array;  (** consumption rate per state *)
  initial : float array;  (** initial distribution [alpha] *)
}

val create :
  generator:Generator.t ->
  currents:float array ->
  initial:float array ->
  t
(** Validates lengths, non-negative currents, and that [initial] is a
    distribution (sums to 1 within [1e-9]). *)

val of_spec :
  states:(string * float) list ->
  transitions:(string * string * float) list ->
  initial:string ->
  t
(** Build from named states: [states] lists [(name, current)] pairs,
    [transitions] lists [(from, to, rate)], [initial] names the
    starting state.  Raises [Invalid_argument] on unknown names or
    duplicates. *)

val n_states : t -> int

val current : t -> int -> float

val name : t -> int -> string

val state_index : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val max_current : t -> float

val steady_state : t -> float array

val average_current : t -> float
(** Steady-state mean consumption rate [sum_i pi_i I_i]. *)

val pp : Format.formatter -> t -> unit
