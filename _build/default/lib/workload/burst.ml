type rates = {
  switch_on : float;
  switch_off : float;
  lambda_burst : float;
  mu : float;
  tau : float;
}

let default_rates =
  { switch_on = 1.; switch_off = 6.; lambda_burst = 182.; mu = 6.; tau = 1. }

let model ?(rates = default_rates) ?(currents = Simple.default_currents) () =
  if
    rates.switch_on <= 0. || rates.switch_off <= 0. || rates.lambda_burst <= 0.
    || rates.mu <= 0. || rates.tau <= 0.
  then invalid_arg "Burst.model: rates must be positive";
  Model.of_spec
    ~states:
      [
        ("sleep", currents.Simple.sleep);
        ("off-idle", currents.Simple.idle);
        ("on-idle", currents.Simple.idle);
        ("off-send", currents.Simple.send);
        ("on-send", currents.Simple.send);
      ]
    ~transitions:
      [
        (* Flow toggling. *)
        ("sleep", "on-idle", rates.switch_on);
        ("off-idle", "on-idle", rates.switch_on);
        ("on-idle", "off-idle", rates.switch_off);
        ("off-send", "on-send", rates.switch_on);
        ("on-send", "off-send", rates.switch_off);
        (* Buffered data triggers a send only while the flow is on. *)
        ("on-idle", "on-send", rates.lambda_burst);
        (* Send completion. *)
        ("on-send", "on-idle", rates.mu);
        ("off-send", "off-idle", rates.mu);
        (* Sleep timeout while no flow is active. *)
        ("off-idle", "sleep", rates.tau);
      ]
    ~initial:"off-idle"
