open Batlife_battery


type sample = { time : float; current : float }

let check_samples samples =
  (match samples with
  | [] | [ _ ] -> invalid_arg "Trace: need at least two samples"
  | _ -> ());
  let rec go previous = function
    | [] -> ()
    | s :: rest ->
        if s.time <= previous then
          invalid_arg "Trace: timestamps must be strictly increasing";
        if s.current < 0. then invalid_arg "Trace: negative current";
        go s.time rest
  in
  match samples with
  | first :: rest ->
      if first.time < 0. then invalid_arg "Trace: negative timestamp";
      if first.current < 0. then invalid_arg "Trace: negative current";
      go first.time rest
  | [] -> ()

let median_gap samples =
  let gaps =
    List.rev
      (snd
         (List.fold_left
            (fun (prev, acc) s ->
              match prev with
              | None -> (Some s.time, acc)
              | Some t -> (Some s.time, (s.time -. t) :: acc))
            (None, []) samples))
  in
  let sorted = List.sort Float.compare gaps in
  List.nth sorted (List.length sorted / 2)

let of_samples samples =
  check_samples samples;
  let tail_hold = median_gap samples in
  let rec segments = function
    | s :: (next :: _ as rest) ->
        { Load_profile.duration = next.time -. s.time; load = s.current }
        :: segments rest
    | [ last ] ->
        [ { Load_profile.duration = tail_hold; load = last.current } ]
    | [] -> []
  in
  let body = segments samples in
  let lead =
    match samples with
    | first :: _ when first.time > 0. ->
        [ { Load_profile.duration = first.time; load = 0. } ]
    | _ -> []
  in
  Load_profile.finite (lead @ body)

let parse_csv text =
  let lines = String.split_on_char '\n' text in
  let parse_line idx line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '#' then None
    else
      match String.split_on_char ',' trimmed with
      | [ t; c ] -> (
          match (float_of_string_opt (String.trim t),
                 float_of_string_opt (String.trim c))
          with
          | Some time, Some current -> Some { time; current }
          | _ ->
              failwith
                (Printf.sprintf "Trace.parse_csv: malformed line %d: %s"
                   (idx + 1) trimmed))
      | _ ->
          failwith
            (Printf.sprintf "Trace.parse_csv: expected 'time,current' on line %d"
               (idx + 1))
  in
  List.filteri (fun _ _ -> true) lines
  |> List.mapi parse_line
  |> List.filter_map Fun.id

let load_csv path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_samples (parse_csv text)

let to_csv profile ~t_end ~step =
  if t_end <= 0. || step <= 0. then
    invalid_arg "Trace.to_csv: need positive horizon and step";
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "# time,current\n";
  let n = int_of_float (Float.floor (t_end /. step)) in
  for i = 0 to n do
    let t = step *. float_of_int i in
    Buffer.add_string buffer
      (Printf.sprintf "%.9g,%.9g\n" t (Load_profile.load_at profile t))
  done;
  Buffer.contents buffer

let synthesize ?(seed = 0x7ACEL) ~horizon workload =
  if horizon <= 0. then invalid_arg "Trace.synthesize: non-positive horizon";
  let rng = Batlife_numerics.Rng.create ~seed () in
  let g = workload.Model.generator in
  let state = ref (Batlife_numerics.Rng.discrete rng workload.Model.initial) in
  let time = ref 0. in
  let acc = ref [ { time = 0.; current = Model.current workload !state } ] in
  let continue = ref true in
  while !continue do
    let exit = Batlife_ctmc.Generator.exit_rate g !state in
    if exit <= 0. then continue := false
    else begin
      let sojourn = Batlife_numerics.Rng.exponential rng ~rate:exit in
      time := !time +. sojourn;
      if !time >= horizon then continue := false
      else begin
        let n = Model.n_states workload in
        let weights =
          Array.init n (fun j ->
              if j = !state then 0. else Batlife_ctmc.Generator.rate g !state j)
        in
        state := Batlife_numerics.Rng.discrete rng weights;
        acc := { time = !time; current = Model.current workload !state } :: !acc
      end
    end
  done;
  List.rev !acc

type estimated = {
  model : Model.t;
  levels : float array;
  occupancy : float array;
}

(* Dwell segments of a trace: (level current, duration). *)
let dwells samples =
  let rec go = function
    | s :: (next :: _ as rest) ->
        (s.current, next.time -. s.time) :: go rest
    | [ _ ] | [] -> []
  in
  go samples

let quantise ~max_states samples =
  let distinct =
    List.sort_uniq Float.compare (List.map (fun s -> s.current) samples)
  in
  if List.length distinct <= max_states then Array.of_list distinct
  else begin
    (* Equal-occupancy clustering: split the time-weighted current
       distribution into max_states quantile buckets and use the
       time-weighted mean of each bucket as its level. *)
    let segments =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) (dwells samples)
    in
    let total = List.fold_left (fun acc (_, d) -> acc +. d) 0. segments in
    let per_bucket = total /. float_of_int max_states in
    let levels = Array.make max_states 0. in
    let weight = Array.make max_states 0. in
    let bucket = ref 0 and filled = ref 0. in
    List.iter
      (fun (current, duration) ->
        let remaining = ref duration in
        while !remaining > 0. do
          let capacity = per_bucket -. !filled in
          let take = Float.min capacity !remaining in
          levels.(!bucket) <- levels.(!bucket) +. (current *. take);
          weight.(!bucket) <- weight.(!bucket) +. take;
          filled := !filled +. take;
          remaining := !remaining -. take;
          if !filled >= per_bucket -. 1e-12 && !bucket < max_states - 1 then begin
            incr bucket;
            filled := 0.
          end
          else if !filled >= per_bucket then remaining := 0.
        done)
      segments;
    Array.mapi
      (fun i acc -> if weight.(i) > 0. then acc /. weight.(i) else 0.)
      levels
  end

let nearest_level levels current =
  let best = ref 0 and best_distance = ref infinity in
  Array.iteri
    (fun i level ->
      let d = Float.abs (level -. current) in
      if d < !best_distance then begin
        best := i;
        best_distance := d
      end)
    levels;
  !best

let estimate_model ?(max_states = 8) samples =
  check_samples samples;
  if max_states < 2 then invalid_arg "Trace.estimate_model: max_states < 2";
  let levels = quantise ~max_states samples in
  let n = Array.length levels in
  if n < 2 then invalid_arg "Trace.estimate_model: trace has a single level";
  (* Collapse consecutive dwells that quantise to the same level, then
     count transitions and time per level. *)
  let dwell_levels =
    List.map (fun (c, d) -> (nearest_level levels c, d)) (dwells samples)
  in
  let time_in = Array.make n 0. in
  let transitions = Array.make_matrix n n 0 in
  let rec walk = function
    | (a, d) :: ((b, _) :: _ as rest) ->
        time_in.(a) <- time_in.(a) +. d;
        if a <> b then transitions.(a).(b) <- transitions.(a).(b) + 1;
        walk rest
    | [ (a, d) ] -> time_in.(a) <- time_in.(a) +. d
    | [] -> ()
  in
  walk dwell_levels;
  let rates = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && transitions.(a).(b) > 0 && time_in.(a) > 0. then
        rates :=
          (a, b, float_of_int transitions.(a).(b) /. time_in.(a)) :: !rates
    done
  done;
  let labels = Array.init n (fun i -> Printf.sprintf "level%d" i) in
  let generator = Batlife_ctmc.Generator.of_rates ~labels ~n !rates in
  let initial = Array.make n 0. in
  (match samples with
  | first :: _ -> initial.(nearest_level levels first.current) <- 1.
  | [] -> ());
  let total = Array.fold_left ( +. ) 0. time_in in
  let occupancy = Array.map (fun t -> t /. Float.max total 1e-300) time_in in
  { model = Model.create ~generator ~currents:levels ~initial; levels;
    occupancy }
