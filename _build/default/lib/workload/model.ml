open Batlife_ctmc

type t = {
  generator : Generator.t;
  currents : float array;
  initial : float array;
}

let create ~generator ~currents ~initial =
  let n = Generator.n_states generator in
  if Array.length currents <> n then
    invalid_arg "Model.create: currents length mismatch";
  if Array.length initial <> n then
    invalid_arg "Model.create: initial distribution length mismatch";
  Array.iter
    (fun i -> if i < 0. then invalid_arg "Model.create: negative current")
    currents;
  let mass = Array.fold_left ( +. ) 0. initial in
  Array.iter
    (fun p -> if p < 0. then invalid_arg "Model.create: negative probability")
    initial;
  if Float.abs (mass -. 1.) > 1e-9 then
    invalid_arg "Model.create: initial distribution does not sum to 1";
  { generator; currents = Array.copy currents; initial = Array.copy initial }

let of_spec ~states ~transitions ~initial =
  if states = [] then invalid_arg "Model.of_spec: no states";
  let names = Array.of_list (List.map fst states) in
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem index name then
        invalid_arg ("Model.of_spec: duplicate state " ^ name);
      Hashtbl.add index name i)
    names;
  let resolve name =
    match Hashtbl.find_opt index name with
    | Some i -> i
    | None -> invalid_arg ("Model.of_spec: unknown state " ^ name)
  in
  let n = Array.length names in
  let rates =
    List.map (fun (a, b, r) -> (resolve a, resolve b, r)) transitions
  in
  let generator = Generator.of_rates ~labels:names ~n rates in
  let currents = Array.of_list (List.map snd states) in
  let alpha = Array.make n 0. in
  alpha.(resolve initial) <- 1.;
  create ~generator ~currents ~initial:alpha

let n_states m = Generator.n_states m.generator

let current m i = m.currents.(i)

let name m i = Generator.label m.generator i

let state_index m s =
  let n = n_states m in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal (name m i) s then i
    else go (i + 1)
  in
  go 0

let max_current m = Array.fold_left Float.max 0. m.currents

let steady_state m = Steady.gth m.generator

let average_current m =
  let pi = steady_state m in
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. m.currents.(i))) pi;
  !acc

let pp ppf m =
  Format.fprintf ppf "@[<v>workload with %d states@," (n_states m);
  for i = 0 to n_states m - 1 do
    Format.fprintf ppf "  %-12s I = %g@," (name m i) m.currents.(i)
  done;
  Format.fprintf ppf "%a@]" Generator.pp m.generator
