(** The five-state "burst" wireless-device model (Fig. 5).

    Arriving data is buffered while a flow is active and transmitted in
    bursts, letting the device sleep longer.  States: [sleep],
    [on-idle], [off-idle], [on-send], [off-send]; "on"/"off" is the
    state of the data flow.  Defaults (per hour): bursts start at
    [switch_on = 1], stop at [switch_off = 6], buffered data arrives at
    [lambda_burst = 182], sends complete at [mu = 6], the sleep timeout
    is [tau = 1].  The paper chooses [lambda_burst = 182/h] so that the
    steady-state send probability equals the simple model's 0.25. *)

type rates = {
  switch_on : float;
  switch_off : float;
  lambda_burst : float;
  mu : float;
  tau : float;
}

val default_rates : rates

val model : ?rates:rates -> ?currents:Simple.currents -> unit -> Model.t
(** Starts in [off-idle] (no active flow, device awake), the
    counterpart of the simple model's [idle] start. *)
