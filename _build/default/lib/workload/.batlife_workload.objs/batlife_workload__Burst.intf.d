lib/workload/burst.mli: Model Simple
