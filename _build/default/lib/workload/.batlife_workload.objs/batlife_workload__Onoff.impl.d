lib/workload/onoff.ml: List Model Printf String
