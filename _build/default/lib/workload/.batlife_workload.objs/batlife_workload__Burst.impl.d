lib/workload/burst.ml: Model Simple
