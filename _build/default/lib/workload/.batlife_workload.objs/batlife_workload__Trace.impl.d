lib/workload/trace.ml: Array Batlife_battery Batlife_ctmc Batlife_numerics Buffer Float Fun List Load_profile Model Printf String
