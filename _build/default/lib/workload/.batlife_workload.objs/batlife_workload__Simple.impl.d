lib/workload/simple.ml: Array List Model String
