lib/workload/onoff.mli: Model
