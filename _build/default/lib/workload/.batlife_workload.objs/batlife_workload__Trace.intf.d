lib/workload/trace.mli: Batlife_battery Load_profile Model
