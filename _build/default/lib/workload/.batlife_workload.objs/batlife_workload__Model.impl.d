lib/workload/model.ml: Array Batlife_ctmc Float Format Generator Hashtbl List Steady String
