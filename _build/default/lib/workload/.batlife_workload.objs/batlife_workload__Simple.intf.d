lib/workload/simple.mli: Model
