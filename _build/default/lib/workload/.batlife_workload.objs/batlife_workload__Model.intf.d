lib/workload/model.mli: Batlife_ctmc Format Generator
