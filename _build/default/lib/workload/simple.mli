(** The three-state "simple" wireless-device model (Fig. 4).

    States: [idle] (8 mA), [send] (200 mA), [sleep] (0 mA).  Data
    arrives at rate [lambda = 2/h] (also waking the device from
    sleep), a send completes at [mu = 6/h], and the device dozes off
    from idle at [tau = 1/h].  All rates and currents can be
    overridden; the defaults are the paper's (units: hours and mA). *)

type rates = {
  lambda : float;  (** data arrival, default 2/h *)
  mu : float;  (** send completion, default 6/h *)
  tau : float;  (** sleep timeout, default 1/h *)
}

val default_rates : rates

type currents = {
  idle : float;  (** default 8 mA *)
  send : float;  (** default 200 mA *)
  sleep : float;  (** default 0 mA *)
}

val default_currents : currents

val model : ?rates:rates -> ?currents:currents -> unit -> Model.t
(** Starts in [idle]. *)

val send_probability : Model.t -> float
(** Steady-state probability of being in a sending state (works for
    any model whose sending states are named ["send"], ["on-send"] or
    ["off-send"]); the quantity the paper equalises between the simple
    and burst models. *)

val sleep_probability : Model.t -> float
(** Steady-state probability of the state(s) named ["sleep"]. *)
