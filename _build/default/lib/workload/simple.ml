type rates = { lambda : float; mu : float; tau : float }

let default_rates = { lambda = 2.; mu = 6.; tau = 1. }

type currents = { idle : float; send : float; sleep : float }

let default_currents = { idle = 8.; send = 200.; sleep = 0. }

let model ?(rates = default_rates) ?(currents = default_currents) () =
  if rates.lambda <= 0. || rates.mu <= 0. || rates.tau <= 0. then
    invalid_arg "Simple.model: rates must be positive";
  Model.of_spec
    ~states:
      [
        ("idle", currents.idle);
        ("send", currents.send);
        ("sleep", currents.sleep);
      ]
    ~transitions:
      [
        ("idle", "send", rates.lambda);
        ("send", "idle", rates.mu);
        ("idle", "sleep", rates.tau);
        ("sleep", "send", rates.lambda);
      ]
    ~initial:"idle"

let probability_of_states m predicate =
  let pi = Model.steady_state m in
  let acc = ref 0. in
  for i = 0 to Model.n_states m - 1 do
    if predicate (Model.name m i) then acc := !acc +. pi.(i)
  done;
  !acc

let send_probability m =
  probability_of_states m (fun name ->
      List.mem name [ "send"; "on-send"; "off-send" ])

let sleep_probability m =
  probability_of_states m (fun name -> String.equal name "sleep")
