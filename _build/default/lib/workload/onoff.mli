(** The Erlang-K on/off workload model (Fig. 3 of the paper).

    For a target toggle frequency [f], the model alternates between an
    on macro-state (current [on_current]) and an off macro-state (no
    consumption), each consisting of [k] exponential phases with rate
    [lambda = 2 f k].  The expected on and off durations are then both
    [1/(2f)], and as [k] grows the sojourns become nearly
    deterministic — the stochastic counterpart of the paper's square
    wave. *)

val model : ?start_on:bool -> frequency:float -> k:int -> on_current:float ->
  unit -> Model.t
(** [model ~frequency ~k ~on_current ()] builds the 2k-state chain.
    [start_on] (default [true]) begins in the first on-phase.  Raises
    [Invalid_argument] for non-positive frequency, current, or [k]. *)

val phase_rate : frequency:float -> k:int -> float
(** [lambda = 2 f k]. *)

val expected_half_period : frequency:float -> float
(** [1 / (2 f)]: the mean on (and off) duration. *)
