(** Trace-driven workloads.

    The paper's conclusion names "the evaluation of real world
    power-aware devices" as future work; the missing piece is feeding
    measured current traces into the battery models.  This module
    parses recorded traces into {!Batlife_battery.Load_profile}s,
    generates synthetic traces from the stochastic workload models
    (for closing the loop in tests), and estimates a CTMC workload
    model back from a trace by quantising the observed currents —
    so a measured device can be run through the KiBaMRM pipeline. *)

open Batlife_battery

type sample = { time : float; current : float }

val of_samples : sample list -> Load_profile.t
(** Build a piecewise-constant profile: sample [k]'s current holds
    from its timestamp to the next one; the final sample's current is
    held for the median inter-sample gap.  Timestamps must be strictly
    increasing and start at 0 or later (an initial gap is treated as
    idle).  Raises [Invalid_argument] on unordered input or fewer than
    two samples. *)

val parse_csv : string -> sample list
(** Parse a trace from a string of CSV lines [time,current]; blank
    lines and [#]-comments are skipped.  Raises [Failure] with the
    offending line number on malformed input. *)

val load_csv : string -> Load_profile.t
(** [load_csv path] reads and parses a trace file. *)

val to_csv : Load_profile.t -> t_end:float -> step:float -> string
(** Sample a profile back to CSV text (for round-tripping and for
    exporting synthetic traces). *)

val synthesize :
  ?seed:int64 -> horizon:float -> Model.t -> sample list
(** Generate a synthetic trace by simulating the workload CTMC until
    [horizon]: one sample per state change. *)

type estimated = {
  model : Model.t;
  levels : float array;  (** quantised current levels (the states) *)
  occupancy : float array;  (** fraction of trace time per level *)
}

val estimate_model : ?max_states:int -> sample list -> estimated
(** Fit a CTMC workload model to a trace: quantise the observed
    currents into at most [max_states] (default 8) distinct levels
    (exact distinct values if few enough, otherwise equal-occupancy
    clusters), then estimate transition rates
    [q_ij = transitions(i->j) / time_in(i)] — the maximum-likelihood
    estimator for a CTMC observed continuously.  The initial state is
    the first sample's level.  Raises [Invalid_argument] if the trace
    has fewer than two samples or only one level. *)
