let phase_rate ~frequency ~k = 2. *. frequency *. float_of_int k

let expected_half_period ~frequency = 1. /. (2. *. frequency)

let model ?(start_on = true) ~frequency ~k ~on_current () =
  if frequency <= 0. then invalid_arg "Onoff.model: non-positive frequency";
  if k < 1 then invalid_arg "Onoff.model: need k >= 1";
  if on_current <= 0. then invalid_arg "Onoff.model: non-positive current";
  let lambda = phase_rate ~frequency ~k in
  let phase_name side i = Printf.sprintf "%s%d" side (i + 1) in
  let states =
    List.init k (fun i -> (phase_name "on" i, on_current))
    @ List.init k (fun i -> (phase_name "off" i, 0.))
  in
  (* on1 -> ... -> onK -> off1 -> ... -> offK -> on1, all at lambda. *)
  let next side i =
    if i + 1 < k then phase_name side (i + 1)
    else phase_name (if String.equal side "on" then "off" else "on") 0
  in
  let transitions =
    List.init k (fun i -> (phase_name "on" i, next "on" i, lambda))
    @ List.init k (fun i -> (phase_name "off" i, next "off" i, lambda))
  in
  let initial = if start_on then "on1" else "off1" in
  Model.of_spec ~states ~transitions ~initial
