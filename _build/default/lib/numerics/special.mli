(** Special functions needed by the probabilistic algorithms.

    Everything here is self-contained (no external numerics library); the
    implementations follow the classical Lanczos / continued-fraction
    formulations and are accurate to roughly 1e-13 relative error in the
    ranges exercised by this code base. *)

val log_gamma : float -> float
(** Natural logarithm of the Gamma function for positive arguments
    (Lanczos approximation).  Raises [Invalid_argument] for
    non-positive input. *)

val log_factorial : int -> float
(** [log_factorial n] is [log (n!)]; table-backed for small [n], via
    {!log_gamma} otherwise.  Raises [Invalid_argument] for negative
    [n]. *)

val log_binomial : int -> int -> float
(** [log_binomial n k] is [log (n choose k)].  Raises
    [Invalid_argument] unless [0 <= k <= n]. *)

val poisson_pmf : lambda:float -> int -> float
(** Poisson probability mass computed in log space (safe for large
    [lambda]).  [lambda] must be non-negative. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26-style rational
    approximation refined by one series term; absolute error below
    1.5e-7, adequate for confidence intervals). *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} (Acklam's rational approximation, relative
    error below 1.15e-9).  Argument must lie in (0, 1). *)
