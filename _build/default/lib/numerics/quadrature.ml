let trapezoid_sampled ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Quadrature.trapezoid_sampled: need >= 2 points";
  if n <> Array.length ys then
    invalid_arg "Quadrature.trapezoid_sampled: length mismatch";
  let acc = ref 0. in
  for i = 1 to n - 1 do
    acc := !acc +. (0.5 *. (ys.(i) +. ys.(i - 1)) *. (xs.(i) -. xs.(i - 1)))
  done;
  !acc

let trapezoid ?(n = 1024) f a b =
  if n < 1 then invalid_arg "Quadrature.trapezoid: need n >= 1";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (h *. float_of_int i))
  done;
  !acc *. h

let simpson ?(n = 1024) f a b =
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (a +. (h *. float_of_int i)))
  done;
  !acc *. h /. 3.

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) f a b =
  let simpson_on a fa fm b fb = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a fa m fm b fb whole tol depth =
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_on a fa flm m fm
    and right = simpson_on m fm frm b fb in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a fa lm flm m fm left (tol /. 2.) (depth - 1)
      +. go m fm rm frm b fb right (tol /. 2.) (depth - 1)
  in
  let fa = f a and fb = f b in
  let m = 0.5 *. (a +. b) in
  let fm = f m in
  go a fa m fm b fb (simpson_on a fa fm b fb) tol max_depth
