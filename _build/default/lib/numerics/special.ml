(* Lanczos approximation with g = 7, n = 9 coefficients (Boost/GSL
   standard set).  Accurate to ~1e-13 for x > 0. *)
let lanczos_g = 7.

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: non-positive argument";
  if x < 0.5 then
    (* Reflection formula keeps accuracy near zero. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !acc

let log_factorial_table_size = 256

let log_factorial_table =
  let t = Array.make log_factorial_table_size 0. in
  for n = 2 to log_factorial_table_size - 1 do
    t.(n) <- t.(n - 1) +. log (float_of_int n)
  done;
  t

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument";
  if n < log_factorial_table_size then log_factorial_table.(n)
  else log_gamma (float_of_int n +. 1.)

let log_binomial n k =
  if k < 0 || k > n then invalid_arg "Special.log_binomial: need 0 <= k <= n";
  log_factorial n -. log_factorial k -. log_factorial (n - k)

let poisson_pmf ~lambda n =
  if lambda < 0. then invalid_arg "Special.poisson_pmf: negative rate";
  if n < 0 then 0.
  else if lambda = 0. then if n = 0 then 1. else 0.
  else exp ((float_of_int n *. log lambda) -. lambda -. log_factorial n)

(* Abramowitz & Stegun 7.1.26; max absolute error 1.5e-7. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. (((((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t)
          -. 0.284496736)
         *. t)
        +. 0.254829592)
       *. t
       *. exp (-.x *. x))
  in
  sign *. y

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

(* Acklam's inverse-normal rational approximation. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then
    invalid_arg "Special.normal_quantile: argument must be in (0,1)";
  let a =
    [|
      -3.969683028665376e+01;
      2.209460984245205e+02;
      -2.759285104469687e+02;
      1.383577518672690e+02;
      -3.066479806614716e+01;
      2.506628277459239e+00;
    |]
  and b =
    [|
      -5.447609879822406e+01;
      1.615858368580409e+02;
      -1.556989798598866e+02;
      6.680131188771972e+01;
      -1.328068155288572e+01;
    |]
  and c =
    [|
      -7.784894002430293e-03;
      -3.223964580411365e-01;
      -2.400758277161838e+00;
      -2.549732539343734e+00;
      4.374664141464968e+00;
      2.938163982698783e+00;
    |]
  and d =
    [|
      7.784695709041462e-03;
      3.224671290700398e-01;
      2.445134137142996e+00;
      3.754408661907416e+00;
    |]
  in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  let tail q =
    (* q = sqrt(-2 log p') for the appropriate tail probability p'. *)
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
    +. c.(5)
  and tail_den q =
    ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.
  in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    tail q /. tail_den q
  else if p > p_high then
    let q = sqrt (-2. *. log (1. -. p)) in
    -.(tail q /. tail_den q)
  else
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
        *. r
      +. a.(5)
    and den =
      (((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
        *. r
      +. 1.
    in
    num *. q /. den
