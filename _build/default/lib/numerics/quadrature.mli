(** Numerical integration.

    Used to turn lifetime CDFs into expected lifetimes
    ([E L = integral of (1 - F)]) and in cross-checks of the analytic
    KiBaM solution. *)

val trapezoid_sampled : xs:float array -> ys:float array -> float
(** Trapezoid rule over given samples (increasing [xs], same length,
    at least two points). *)

val trapezoid : ?n:int -> (float -> float) -> float -> float -> float
(** [trapezoid f a b] with [n] uniform intervals (default 1024). *)

val simpson : ?n:int -> (float -> float) -> float -> float -> float
(** Composite Simpson rule with [n] intervals (rounded up to even,
    default 1024). *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** Adaptive Simpson integration with absolute tolerance [tol]
    (default [1e-10]). *)
