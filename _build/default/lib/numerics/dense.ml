type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Dense.create: empty dimensions";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Dense.of_arrays: no rows";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then
        invalid_arg "Dense.of_arrays: ragged rows")
    rows_arr;
  init ~rows ~cols (fun i j -> rows_arr.(i).(j))

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let rows m = m.rows

let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": shape mismatch")

let add a b =
  check_same_shape "Dense.add" a b;
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let sub a b =
  check_same_shape "Dense.sub" a b;
  { a with data = Array.mapi (fun i x -> x -. b.data.(i)) a.data }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Dense.matmul: inner dimensions";
  let c = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let matvec a x =
  if a.cols <> Array.length x then invalid_arg "Dense.matvec: dimensions";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + j) *. x.(j))
      done;
      !acc)

let vecmat x a =
  if a.rows <> Array.length x then invalid_arg "Dense.vecmat: dimensions";
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (xi *. a.data.((i * a.cols) + j))
      done
  done;
  y

let transpose a = init ~rows:a.cols ~cols:a.rows (fun i j -> get a j i)

(* LU with partial pivoting (Doolittle).  Returns packed LU and the
   pivot permutation. *)
let lu_decompose a =
  if a.rows <> a.cols then invalid_arg "Dense.lu: square matrix required";
  let n = a.rows in
  let lu = copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Pivot search. *)
    let pivot = ref k and best = ref (Float.abs (get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (get lu i k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best < 1e-300 then failwith "Dense.lu: singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let t = get lu k j in
        set lu k j (get lu !pivot j);
        set lu !pivot j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- t
    end;
    let pivot_val = get lu k k in
    for i = k + 1 to n - 1 do
      let factor = get lu i k /. pivot_val in
      set lu i k factor;
      for j = k + 1 to n - 1 do
        set lu i j (get lu i j -. (factor *. get lu k j))
      done
    done
  done;
  (lu, perm)

let lu_back_substitute lu perm b =
  let n = Array.length b in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      acc := !acc -. (get lu i j *. y.(j))
    done;
    y.(i) <- !acc
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. get lu i i
  done;
  x

let lu_solve a b =
  if a.rows <> Array.length b then invalid_arg "Dense.lu_solve: dimensions";
  let lu, perm = lu_decompose a in
  lu_back_substitute lu perm b

let solve_many a b =
  if a.rows <> b.rows then invalid_arg "Dense.solve_many: dimensions";
  let lu, perm = lu_decompose a in
  let x = create ~rows:a.rows ~cols:b.cols in
  for j = 0 to b.cols - 1 do
    let col = Array.init b.rows (fun i -> get b i j) in
    let sol = lu_back_substitute lu perm col in
    Array.iteri (fun i v -> set x i j v) sol
  done;
  x

let inverse a = solve_many a (identity a.rows)

let norm_inf a =
  let best = ref 0. in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc := !acc +. Float.abs (get a i j)
    done;
    best := Float.max !best !acc
  done;
  !best

(* Scaling and squaring: scale so the norm is below 1/2, run a Taylor
   series to machine precision (bounded term count), square back. *)
let expm a =
  if a.rows <> a.cols then invalid_arg "Dense.expm: square matrix required";
  let norm = norm_inf a in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (Float.ceil (Float.log2 (norm /. 0.5)))
  in
  let scaled = scale (1. /. Float.pow 2. (float_of_int s)) a in
  let n = a.rows in
  let result = ref (identity n) in
  let term = ref (identity n) in
  let k = ref 1 in
  let continue = ref true in
  while !continue && !k <= 40 do
    term := scale (1. /. float_of_int !k) (matmul !term scaled);
    result := add !result !term;
    if norm_inf !term < 1e-18 then continue := false;
    incr k
  done;
  let squared = ref !result in
  for _ = 1 to s do
    squared := matmul !squared !squared
  done;
  !squared

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2
       (fun x y -> Float.abs (x -. y) <= tol)
       (Array.copy a.data) (Array.copy b.data)

let pp ppf a =
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.6g" (get a i j)
    done;
    Format.fprintf ppf "]@."
  done
