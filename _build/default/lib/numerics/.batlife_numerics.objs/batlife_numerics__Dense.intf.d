lib/numerics/dense.mli: Format
