lib/numerics/dense.ml: Array Float Format
