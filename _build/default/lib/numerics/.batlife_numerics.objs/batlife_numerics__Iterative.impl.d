lib/numerics/iterative.ml: Array Float Printf Sparse Vector
