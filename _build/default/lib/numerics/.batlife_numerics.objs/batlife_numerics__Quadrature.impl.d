lib/numerics/quadrature.ml: Array Float
