lib/numerics/roots.mli:
