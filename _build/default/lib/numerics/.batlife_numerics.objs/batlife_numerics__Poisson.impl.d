lib/numerics/poisson.ml: Array Float List Special
