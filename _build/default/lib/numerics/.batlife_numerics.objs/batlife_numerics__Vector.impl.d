lib/numerics/vector.ml: Array Float Format
