lib/numerics/iterative.mli: Sparse
