lib/numerics/special.mli:
