lib/numerics/ode.mli:
