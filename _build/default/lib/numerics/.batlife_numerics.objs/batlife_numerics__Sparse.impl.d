lib/numerics/sparse.ml: Array Dense Float Printf
