lib/numerics/interp.mli:
