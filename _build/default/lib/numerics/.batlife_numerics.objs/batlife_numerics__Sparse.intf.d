lib/numerics/sparse.mli: Dense
