lib/numerics/rng.mli:
