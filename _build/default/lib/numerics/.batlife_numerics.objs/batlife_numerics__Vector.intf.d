lib/numerics/vector.mli: Format
