lib/numerics/rng.ml: Array Int64
