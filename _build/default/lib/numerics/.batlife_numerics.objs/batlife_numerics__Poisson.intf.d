lib/numerics/poisson.mli:
