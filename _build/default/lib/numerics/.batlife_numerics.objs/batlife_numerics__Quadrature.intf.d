lib/numerics/quadrature.mli:
