lib/numerics/roots.ml: Float Option Printf
