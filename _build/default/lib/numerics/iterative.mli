(** Iterative solvers for sparse linear systems.

    The expanded battery generators have up to millions of unknowns, so
    direct factorisation is off the table; their transient parts are
    (irreducibly diagonally dominant) M-matrices, for which Jacobi and
    Gauss–Seidel sweeps converge.  Used for exact first-passage
    expectations (mean battery lifetime without a time grid). *)

type result = {
  solution : float array;
  iterations : int;
  residual : float;  (** final max-norm residual *)
}

exception Did_not_converge of result
(** Raised when the iteration budget is exhausted; carries the best
    iterate for diagnosis. *)

val jacobi :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  Sparse.t ->
  b:float array ->
  result
(** Solve [A x = b] by Jacobi iteration.  [A] must be square with a
    nonzero diagonal; [tol] (default 1e-10) bounds the max-norm
    residual relative to [max 1 ||b||]; [max_iter] defaults to
    100_000. *)

val gauss_seidel :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?skip:(int -> bool) ->
  Sparse.t ->
  b:float array ->
  result
(** Gauss–Seidel (forward sweeps); usually converges in far fewer
    sweeps than Jacobi on the battery systems.  Rows [i] with
    [skip i = true] are held fixed at their initial value (used to pin
    absorbing states to 0). *)
