(** Piecewise-linear interpolation over sampled functions.

    Used to read values and quantiles off computed lifetime
    distributions (e.g. "at which time is the battery empty with
    probability 0.99?"). *)

type t
(** An interpolant over strictly increasing abscissae. *)

val create : xs:float array -> ys:float array -> t
(** Build an interpolant.  [xs] must be strictly increasing and of the
    same positive length as [ys]; raises [Invalid_argument]
    otherwise. *)

val eval : t -> float -> float
(** Piecewise-linear evaluation; clamps to the boundary values outside
    the sampled range. *)

val inverse : t -> float -> float
(** [inverse t y] finds the smallest [x] with [eval t x >= y], assuming
    the sampled [ys] are non-decreasing (a CDF).  Clamps to the range
    boundaries; raises [Invalid_argument] if [ys] is decreasing
    somewhere. *)

val xs : t -> float array

val ys : t -> float array
