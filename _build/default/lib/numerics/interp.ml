type t = { xs : float array; ys : float array }

let create ~xs ~ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Interp.create: empty abscissae";
  if n <> Array.length ys then invalid_arg "Interp.create: length mismatch";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Interp.create: abscissae not strictly increasing"
  done;
  { xs = Array.copy xs; ys = Array.copy ys }

(* Largest index i with xs.(i) <= x, given xs.(0) <= x. *)
let locate xs x =
  let lo = ref 0 and hi = ref (Array.length xs - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if xs.(mid) <= x then lo := mid else hi := mid
  done;
  !lo

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else
    let i = locate t.xs x in
    let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
    let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))

let inverse t y =
  let n = Array.length t.ys in
  for i = 1 to n - 1 do
    if t.ys.(i) < t.ys.(i - 1) then
      invalid_arg "Interp.inverse: ordinates not non-decreasing"
  done;
  if y <= t.ys.(0) then t.xs.(0)
  else if y >= t.ys.(n - 1) then t.xs.(n - 1)
  else begin
    (* First index with ys.(i) >= y. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.ys.(mid) < y then lo := mid else hi := mid
    done;
    let i = !lo in
    let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
    if y1 = y0 then t.xs.(i + 1)
    else
      let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
      x0 +. ((x1 -. x0) *. (y -. y0) /. (y1 -. y0))
  end

let xs t = Array.copy t.xs

let ys t = Array.copy t.ys
