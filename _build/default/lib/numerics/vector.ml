type t = float array

let create n = Array.make n 0.

let make = Array.make

let init = Array.init

let copy = Array.copy

let fill v x = Array.fill v 0 (Array.length v) x

let check_same_length name x y =
  if Array.length x <> Array.length y then
    invalid_arg (name ^ ": length mismatch")

let blit ~src ~dst =
  check_same_length "Vector.blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let scale a x = Array.map (fun xi -> a *. xi) x

let scale_inplace a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let add x y =
  check_same_length "Vector.add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_length "Vector.sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let axpy ~alpha ~x ~y =
  check_same_length "Vector.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let dot x y =
  check_same_length "Vector.dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sum x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. x.(i)
  done;
  !acc

let norm1 x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. Float.abs x.(i)
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs x.(i))
  done;
  !acc

let dist_inf x y =
  check_same_length "Vector.dist_inf" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let max_elt x =
  if Array.length x = 0 then invalid_arg "Vector.max_elt: empty";
  Array.fold_left Float.max x.(0) x

let min_elt x =
  if Array.length x = 0 then invalid_arg "Vector.min_elt: empty";
  Array.fold_left Float.min x.(0) x

let normalize1 x =
  let s = sum x in
  if s <= 0. then invalid_arg "Vector.normalize1: non-positive sum";
  scale (1. /. s) x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y && dist_inf x y <= tol

let linspace a b n =
  if n < 2 then invalid_arg "Vector.linspace: need n >= 2";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (h *. float_of_int i))

let pp ppf v =
  Format.fprintf ppf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "|]"
