(** Dense vectors of floats.

    Thin, allocation-conscious helpers over [float array] used throughout
    the library.  All binary operations require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val make : int -> float -> t
(** [make n x] is a vector of length [n] filled with [x]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst] (equal lengths). *)

val scale : float -> t -> t
(** [scale a x] is the fresh vector [a * x]. *)

val scale_inplace : float -> t -> unit

val add : t -> t -> t

val sub : t -> t -> t

val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] performs [y <- alpha * x + y] in place. *)

val dot : t -> t -> float

val sum : t -> float

val norm1 : t -> float

val norm2 : t -> float

val norm_inf : t -> float

val dist_inf : t -> t -> float
(** Maximum absolute componentwise difference. *)

val max_elt : t -> float
(** Largest element.  Raises [Invalid_argument] on the empty vector. *)

val min_elt : t -> float

val normalize1 : t -> t
(** Scale so the entries sum to 1.  Raises [Invalid_argument] if the sum
    is not strictly positive. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol] (default
    [1e-9]). *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive ([n >= 2]). *)

val pp : Format.formatter -> t -> unit
