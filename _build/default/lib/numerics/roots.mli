(** Scalar root finding.

    Used for battery-lifetime computation (the instant the available
    charge hits zero inside a workload step) and for parameter
    calibration (fitting the KiBaM diffusion constant [k] to a measured
    lifetime). *)

exception No_root of string
(** Raised when the requested bracket does not contain a sign change or
    the iteration budget is exhausted. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [[a, b]]; [f a] and [f b] must
    have opposite signs (a zero endpoint is returned directly).
    [tol] (default [1e-12]) bounds the final bracket width relative to
    the initial one. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: inverse-quadratic interpolation guarded by
    bisection.  Same contract as {!bisect}, usually far fewer function
    evaluations. *)

val secant :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Secant iteration from two starting points (no bracketing
    guarantee). *)

val expand_bracket :
  ?factor:float ->
  ?max_iter:int ->
  (float -> float) ->
  float ->
  float ->
  float * float
(** [expand_bracket f a b] grows the interval geometrically (keeping
    [a] fixed and pushing [b]) until [f] changes sign over it.  Raises
    {!No_root} if no sign change is found within the budget. *)
