module Builder = struct
  type t = {
    rows : int;
    cols : int;
    mutable len : int;
    mutable row : int array;
    mutable col : int array;
    mutable value : float array;
  }

  let create ?(initial_capacity = 1024) ~rows ~cols () =
    if rows <= 0 || cols <= 0 then
      invalid_arg "Sparse.Builder.create: empty dimensions";
    let capacity = max initial_capacity 16 in
    {
      rows;
      cols;
      len = 0;
      row = Array.make capacity 0;
      col = Array.make capacity 0;
      value = Array.make capacity 0.;
    }

  let grow b =
    let capacity = 2 * Array.length b.row in
    let row = Array.make capacity 0
    and col = Array.make capacity 0
    and value = Array.make capacity 0. in
    Array.blit b.row 0 row 0 b.len;
    Array.blit b.col 0 col 0 b.len;
    Array.blit b.value 0 value 0 b.len;
    b.row <- row;
    b.col <- col;
    b.value <- value

  let add b i j v =
    if i < 0 || i >= b.rows || j < 0 || j >= b.cols then
      invalid_arg
        (Printf.sprintf "Sparse.Builder.add: index (%d,%d) out of %dx%d" i j
           b.rows b.cols);
    if v <> 0. then begin
      if b.len = Array.length b.row then grow b;
      b.row.(b.len) <- i;
      b.col.(b.len) <- j;
      b.value.(b.len) <- v;
      b.len <- b.len + 1
    end

  let nnz b = b.len

  let rows b = b.rows

  let cols b = b.cols

  let iter b f =
    for k = 0 to b.len - 1 do
      f b.row.(k) b.col.(k) b.value.(k)
    done
end

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

(* Two-pass counting sort by row, then per-row sort by column and
   duplicate merge.  O(nnz log nnz_row) and no intermediate boxing. *)
let of_builder (b : Builder.t) =
  let n = b.Builder.len in
  let rows = b.Builder.rows and cols = b.Builder.cols in
  let counts = Array.make (rows + 1) 0 in
  for k = 0 to n - 1 do
    counts.(b.Builder.row.(k) + 1) <- counts.(b.Builder.row.(k) + 1) + 1
  done;
  for i = 1 to rows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  (* counts.(i) now is the start offset of row i. *)
  let col_tmp = Array.make (max n 1) 0 and val_tmp = Array.make (max n 1) 0. in
  let cursor = Array.copy counts in
  for k = 0 to n - 1 do
    let r = b.Builder.row.(k) in
    let pos = cursor.(r) in
    col_tmp.(pos) <- b.Builder.col.(k);
    val_tmp.(pos) <- b.Builder.value.(k);
    cursor.(r) <- pos + 1
  done;
  (* Sort each row segment by column index (insertion sort: rows are
     short in all our generators) and merge duplicates in place. *)
  let row_ptr = Array.make (rows + 1) 0 in
  let write = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !write;
    let lo = counts.(i) and hi = cursor.(i) in
    for k = lo + 1 to hi - 1 do
      let c = col_tmp.(k) and v = val_tmp.(k) in
      let j = ref (k - 1) in
      while !j >= lo && col_tmp.(!j) > c do
        col_tmp.(!j + 1) <- col_tmp.(!j);
        val_tmp.(!j + 1) <- val_tmp.(!j);
        decr j
      done;
      col_tmp.(!j + 1) <- c;
      val_tmp.(!j + 1) <- v
    done;
    let k = ref lo in
    while !k < hi do
      let c = col_tmp.(!k) in
      let acc = ref 0. in
      while !k < hi && col_tmp.(!k) = c do
        acc := !acc +. val_tmp.(!k);
        incr k
      done;
      if !acc <> 0. then begin
        col_tmp.(!write) <- c;
        val_tmp.(!write) <- !acc;
        incr write
      end
    done
  done;
  row_ptr.(rows) <- !write;
  {
    rows;
    cols;
    row_ptr;
    col_idx = Array.sub col_tmp 0 !write;
    values = Array.sub val_tmp 0 !write;
  }

let of_dense d =
  let rows = Dense.rows d and cols = Dense.cols d in
  let b = Builder.create ~rows ~cols () in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Builder.add b i j (Dense.get d i j)
    done
  done;
  of_builder b

let to_dense t =
  let d = Dense.create ~rows:t.rows ~cols:t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Dense.set d i t.col_idx.(k) (Dense.get d i t.col_idx.(k) +. t.values.(k))
    done
  done;
  d

let nnz t = Array.length t.values

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: index out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let matvec t x =
  if Array.length x <> t.cols then invalid_arg "Sparse.matvec: dimensions";
  let y = Array.make t.rows 0. in
  for i = 0 to t.rows - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let vecmat x t =
  if Array.length x <> t.rows then invalid_arg "Sparse.vecmat: dimensions";
  let y = Array.make t.cols 0. in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (xi *. t.values.(k))
      done
  done;
  y

let vecmat_acc ~src t ~scale ~dst =
  if Array.length src <> t.rows then
    invalid_arg "Sparse.vecmat_acc: source dimension";
  if Array.length dst <> t.cols then
    invalid_arg "Sparse.vecmat_acc: destination dimension";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let xi = src.(i) *. scale in
    if xi <> 0. then
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        dst.(col_idx.(k)) <- dst.(col_idx.(k)) +. (xi *. values.(k))
      done
  done

let row_sums t =
  Array.init t.rows (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. t.values.(k)
      done;
      !acc)

let scale s t = { t with values = Array.map (fun v -> s *. v) t.values }

let transpose t =
  let b = Builder.create ~initial_capacity:(nnz t) ~rows:t.cols ~cols:t.rows ()
  in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Builder.add b t.col_idx.(k) i t.values.(k)
    done
  done;
  of_builder b

let iter t f =
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.col_idx.(k) t.values.(k)
    done
  done

let max_abs_diagonal t =
  let best = ref 0. in
  for i = 0 to min t.rows t.cols - 1 do
    best := Float.max !best (Float.abs (get t i i))
  done;
  !best
