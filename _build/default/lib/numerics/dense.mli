(** Dense matrices (row-major).

    Small-matrix workhorse: steady-state computation via GTH needs
    dense elimination, phase-type moments need linear solves, and the
    uniformisation engine is validated against a dense matrix
    exponential. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Copies the rows; all rows must have the same positive length. *)

val to_arrays : t -> float array array

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val matmul : t -> t -> t

val matvec : t -> float array -> float array
(** [matvec a x] is [A x]. *)

val vecmat : float array -> t -> float array
(** [vecmat x a] is [x^T A] (row vector times matrix). *)

val transpose : t -> t

val lu_solve : t -> float array -> float array
(** Solve [A x = b] by LU decomposition with partial pivoting.  Raises
    [Failure] on (numerically) singular systems. *)

val solve_many : t -> t -> t
(** [solve_many a b] solves [A X = B] column by column. *)

val inverse : t -> t

val expm : t -> t
(** Matrix exponential by scaling-and-squaring with a Taylor kernel;
    intended as a test oracle for moderate-norm matrices, not as a
    high-performance routine. *)

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
