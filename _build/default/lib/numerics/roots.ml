exception No_root of string

let same_sign x y = (x >= 0. && y >= 0.) || (x <= 0. && y <= 0.)

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if same_sign fa fb then
    raise (No_root (Printf.sprintf "bisect: no sign change on [%g, %g]" a b))
  else begin
    let a = ref a and b = ref b and fa = ref fa in
    let width0 = Float.abs (!b -. !a) in
    let result = ref None in
    let i = ref 0 in
    while Option.is_none !result && !i < max_iter do
      incr i;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if fm = 0. || Float.abs (!b -. !a) <= tol *. Float.max width0 1. then
        result := Some m
      else if same_sign !fa fm then begin
        a := m;
        fa := fm
      end
      else b := m
    done;
    match !result with
    | Some r -> r
    | None -> 0.5 *. (!a +. !b)
  end

(* Classical Brent: keep a bracketing pair (a, b) with f(b) the smaller
   magnitude, try inverse quadratic interpolation / secant, fall back to
   bisection when the candidate step is not acceptable. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if same_sign fa fb then
    raise (No_root (Printf.sprintf "brent: no sign change on [%g, %g]" a b))
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let result = ref None in
    let i = ref 0 in
    while Option.is_none !result && !i < max_iter do
      incr i;
      let delta = tol *. Float.max (Float.abs !b) 1. in
      if !fb = 0. || Float.abs (!b -. !a) <= delta then result := Some !b
      else begin
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* Inverse quadratic interpolation. *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else
            (* Secant. *)
            !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo = ((3. *. !a) +. !b) /. 4. and hi = !b in
        let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
        let use_bisection =
          s < lo || s > hi
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
          || (!mflag && Float.abs (!b -. !c) < delta)
          || ((not !mflag) && Float.abs (!c -. !d) < delta)
        in
        let s = if use_bisection then 0.5 *. (!a +. !b) else s in
        mflag := use_bisection;
        let fs = f s in
        d := !c;
        c := !b;
        fc := !fb;
        if same_sign !fa fs then begin
          a := s;
          fa := fs
        end
        else begin
          b := s;
          fb := fs
        end;
        if Float.abs !fa < Float.abs !fb then begin
          let t = !a in
          a := !b;
          b := t;
          let t = !fa in
          fa := !fb;
          fb := t
        end
      end
    done;
    match !result with Some r -> r | None -> !b
  end

let secant ?(tol = 1e-12) ?(max_iter = 100) f x0 x1 =
  let rec loop x0 f0 x1 f1 i =
    if f1 = 0. || Float.abs (x1 -. x0) <= tol *. Float.max (Float.abs x1) 1.
    then x1
    else if i >= max_iter then raise (No_root "secant: iteration budget")
    else if f1 = f0 then raise (No_root "secant: flat segment")
    else
      let x2 = x1 -. (f1 *. (x1 -. x0) /. (f1 -. f0)) in
      loop x1 f1 x2 (f x2) (i + 1)
  in
  loop x0 (f x0) x1 (f x1) 0

let expand_bracket ?(factor = 2.) ?(max_iter = 60) f a b =
  if b <= a then invalid_arg "Roots.expand_bracket: need a < b";
  let fa = f a in
  let rec loop b i =
    if i >= max_iter then
      raise (No_root "expand_bracket: no sign change found")
    else if not (same_sign fa (f b)) then (a, b)
    else loop (a +. ((b -. a) *. factor)) (i + 1)
  in
  loop b 0
