(** Exact distribution of the occupation time of a subset of states
    (interval availability), after Takacs and Sericola — the
    uniformisation-based technique the paper cites as [25].

    Let [W(t)] be the total time spent in the subset [B] during
    [[0, t]].  Conditioned on [n] jumps of the uniformised chain, the
    jump epochs are order statistics of [n] uniforms, so the fractions
    of time per visit are Dirichlet spacings, and given that the
    uniformised path makes [s] visits to [B] (counting [Z_0..Z_n]),
    [W(t)/t ~ Beta(s, n+1-s)].  The Beta–binomial duality
    [P(Beta(s, n+1-s) <= x) = P(Bin(n, x) >= s)] turns the mixture
    into

    {v
      P(W(t) <= x t)
        = sum_n pois(qt; n)
                sum_{k=0}^n C(n,k) x^k (1-x)^(n-k) P(S_n <= k)
    v}

    where [S_n] is the number of [B]-visits of the uniformised jump
    chain — computable by a plain DTMC recursion.  Everything is exact
    up to the Poisson truncation and a mass-pruning tolerance of 1e-14
    in the [S_n] distribution.

    For a reward structure taking only two values [{0, r}] the
    accumulated reward is [r W(t)], so this module also yields exact
    performability distributions for on/off-style models (the check
    used against the paper's Fig. 7 setting). *)

open Batlife_ctmc

val cdf :
  ?accuracy:float ->
  Generator.t ->
  alpha:float array ->
  subset:bool array ->
  queries:(float * float) array ->
  float array
(** [cdf g ~alpha ~subset ~queries] returns [P(W(t) <= y)] for each
    query pair [(t, y)].  Queries with [y >= t] give 1, with [y < 0]
    give 0.  All queries are served by a single sweep over the jump
    count. *)

val cdf_single :
  ?accuracy:float ->
  Generator.t ->
  alpha:float array ->
  subset:bool array ->
  t:float ->
  y:float ->
  float

val two_valued_cdf :
  ?accuracy:float ->
  Mrm.t ->
  queries:(float * float) array ->
  float array
(** For an MRM whose rewards take exactly two distinct values
    [{0, r}]: [P(Y(t) <= y)] for each [(t, y)] query.  Raises
    [Invalid_argument] if the reward structure is not of this form
    (after collapsing equal values; a single nonzero value with no
    zero-reward state is accepted as the degenerate case [Y = r t]). *)
