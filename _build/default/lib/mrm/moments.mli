(** Exact moments of the accumulated reward.

    The expectation uses the classical uniformisation identity for
    expected occupation times,
    [integral_0^t pi(s) ds = (1/q) sum_n (alpha P^n) P(N(t) > n)],
    so [E Y(t) = sum_i r_i] times the expected occupation of state
    [i]. *)

val expected_reward : ?accuracy:float -> Mrm.t -> t:float -> float
(** [E Y(t)]. *)

val expected_occupations : ?accuracy:float -> Mrm.t -> t:float -> float array
(** Expected total time spent in each state during [[0, t]]; sums to
    [t]. *)

val steady_rate : Mrm.t -> float
(** Long-run reward rate [sum_i pi_i r_i] (irreducible chains). *)
