open Batlife_ctmc

type t = {
  generator : Generator.t;
  rewards : float array;
  alpha : float array;
}

let create ~generator ~rewards ~alpha =
  let n = Generator.n_states generator in
  if Array.length rewards <> n then
    invalid_arg "Mrm.create: rewards length mismatch";
  if Array.length alpha <> n then
    invalid_arg "Mrm.create: alpha length mismatch";
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Mrm.create: negative reward")
    rewards;
  Array.iter
    (fun p -> if p < 0. then invalid_arg "Mrm.create: negative probability")
    alpha;
  let mass = Array.fold_left ( +. ) 0. alpha in
  if Float.abs (mass -. 1.) > 1e-9 then
    invalid_arg "Mrm.create: alpha does not sum to 1";
  { generator; rewards = Array.copy rewards; alpha = Array.copy alpha }

let n_states m = Generator.n_states m.generator

let distinct_rewards m =
  let sorted = Array.copy m.rewards in
  Array.sort Float.compare sorted;
  let distinct = ref [] in
  Array.iter
    (fun r ->
      match !distinct with
      | r' :: _ when r' = r -> ()
      | _ -> distinct := r :: !distinct)
    sorted;
  Array.of_list (List.rev !distinct)

let reward_bounds m =
  let d = distinct_rewards m in
  (d.(0), d.(Array.length d - 1))

let scale_rewards factor m =
  if factor <= 0. then invalid_arg "Mrm.scale_rewards: non-positive factor";
  { m with rewards = Array.map (fun r -> factor *. r) m.rewards }
