(** Homogeneous Markov reward models (Section 4.1 of the paper).

    A finite CTMC, a rate-reward vector and an initial distribution.
    The accumulated reward is [Y(t) = integral of r_{X(s)} ds]; its
    distribution (the performability distribution of Meyer) is computed
    exactly for two-valued reward structures ({!Occupation}) and by
    Erlangization for general non-negative rewards
    ({!Erlangization}). *)

open Batlife_ctmc

type t = private {
  generator : Generator.t;
  rewards : float array;  (** rate reward per state, non-negative *)
  alpha : float array;  (** initial distribution *)
}

val create :
  generator:Generator.t -> rewards:float array -> alpha:float array -> t
(** Validates lengths, non-negativity of rewards, and that [alpha] is
    a distribution. *)

val n_states : t -> int

val distinct_rewards : t -> float array
(** Sorted distinct reward values. *)

val reward_bounds : t -> float * float
(** [(r_min, r_max)]: at time [t] the accumulated reward lies in
    [[r_min t, r_max t]]. *)

val scale_rewards : float -> t -> t
(** Multiply every reward rate (hence [Y(t)]) by a positive factor. *)
