open Batlife_numerics
open Batlife_ctmc

(* Pruned joint distribution of (uniformised state, number of B-visits)
   after n jumps.  [slices.(s - lo).(i)] is
   Pr(Z_n = i, S_n = s); mass outside [lo, hi] is accounted for in
   [mass_below] / [mass_above] (at most the pruning tolerance each). *)
type visits = {
  lo : int;
  slices : float array array;
  prefix : float array;  (** prefix.(s - lo) = Pr(S_n <= s) - mass_below *)
  mass_below : float;
  mass_above : float;
}

let prune_tol = 1e-15

let make_visits ~lo ~slices ~mass_below ~mass_above =
  (* Drop negligible boundary slices, keeping the books balanced. *)
  let mass slice = Array.fold_left ( +. ) 0. slice in
  let n = Array.length slices in
  let first = ref 0 and last = ref (n - 1) in
  let below = ref mass_below and above = ref mass_above in
  while !first < !last && mass slices.(!first) < prune_tol do
    below := !below +. mass slices.(!first);
    incr first
  done;
  while !last > !first && mass slices.(!last) < prune_tol do
    above := !above +. mass slices.(!last);
    decr last
  done;
  let slices = Array.sub slices !first (!last - !first + 1) in
  let prefix = Array.make (Array.length slices) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun idx slice ->
      acc := !acc +. mass slice;
      prefix.(idx) <- !acc)
    slices;
  {
    lo = lo + !first;
    slices;
    prefix;
    mass_below = !below;
    mass_above = !above;
  }

(* Pr(S_n <= k), exact within the pruning tolerance. *)
let visits_cdf v k =
  if k < v.lo then v.mass_below
  else
    let hi = v.lo + Array.length v.slices - 1 in
    if k >= hi then 1. -. v.mass_above
    else v.mass_below +. v.prefix.(k - v.lo)

let initial_visits alpha subset =
  let n = Array.length alpha in
  let s0 = Array.make n 0. and s1 = Array.make n 0. in
  Array.iteri
    (fun i p -> if subset.(i) then s1.(i) <- p else s0.(i) <- p)
    alpha;
  make_visits ~lo:0 ~slices:[| s0; s1 |] ~mass_below:0. ~mass_above:0.

let step_visits p subset v =
  let count = Array.length v.slices in
  let n = Array.length v.slices.(0) in
  (* s can grow by one: allocate count+1 result slices. *)
  let result = Array.init (count + 1) (fun _ -> Array.make n 0.) in
  Array.iteri
    (fun idx slice ->
      let moved = Sparse.vecmat slice p in
      for i = 0 to n - 1 do
        if moved.(i) <> 0. then
          if subset.(i) then
            result.(idx + 1).(i) <- result.(idx + 1).(i) +. moved.(i)
          else result.(idx).(i) <- result.(idx).(i) +. moved.(i)
      done)
    v.slices;
  make_visits ~lo:v.lo ~slices:result ~mass_below:v.mass_below
    ~mass_above:v.mass_above

(* E[cdf_S(K)] for K ~ Binomial(n, x), evaluated over the bulk of K
   with the tails attached to the boundary cdf values. *)
let binomial_expectation v ~n ~x =
  if x <= 0. then visits_cdf v 0
  else if x >= 1. then visits_cdf v n
  else begin
    let nf = float_of_int n in
    let mean = nf *. x in
    let sd = sqrt (nf *. x *. (1. -. x)) in
    let k_lo = max 0 (int_of_float (Float.floor (mean -. (10. *. sd))) - 3) in
    let k_hi = min n (int_of_float (Float.ceil (mean +. (10. *. sd))) + 3) in
    (* log pmf at k_lo, then the usual ratio recurrence. *)
    let log_pmf_lo =
      Special.log_binomial n k_lo
      +. (float_of_int k_lo *. log x)
      +. (float_of_int (n - k_lo) *. log (1. -. x))
    in
    let ratio = x /. (1. -. x) in
    let acc = ref 0. and total = ref 0. in
    let pmf = ref (exp log_pmf_lo) in
    for k = k_lo to k_hi do
      acc := !acc +. (!pmf *. visits_cdf v k);
      total := !total +. !pmf;
      if k < k_hi then
        pmf := !pmf *. ratio *. (float_of_int (n - k) /. float_of_int (k + 1))
    done;
    (* Attach the (tiny) truncated binomial tails to the boundary
       values of the visit cdf. *)
    let leftover = Float.max 0. (1. -. !total) in
    !acc
    +. (leftover /. 2. *. (visits_cdf v k_lo +. visits_cdf v k_hi))
  end

type query = {
  index : int;
  x : float;
  window : Poisson.t;
}

let cdf ?(accuracy = 1e-12) g ~alpha ~subset ~queries =
  let n = Generator.n_states g in
  if Array.length alpha <> n then invalid_arg "Occupation.cdf: alpha length";
  if Array.length subset <> n then invalid_arg "Occupation.cdf: subset length";
  let q = Generator.uniformisation_rate g in
  let p = Generator.uniformised g ~q in
  let results = Array.make (Array.length queries) 0. in
  let active = ref [] in
  Array.iteri
    (fun index (t, y) ->
      if t < 0. then invalid_arg "Occupation.cdf: negative time";
      if y < 0. then results.(index) <- 0.
      else if y >= t then results.(index) <- 1.
      else
        active :=
          { index; x = y /. t; window = Poisson.weights ~accuracy (q *. t) }
          :: !active)
    queries;
  let active = !active in
  let n_max =
    List.fold_left (fun acc qr -> max acc qr.window.Poisson.right) 0 active
  in
  let visits = ref (initial_visits alpha subset) in
  for m = 0 to n_max do
    if m > 0 then visits := step_visits p subset !visits;
    List.iter
      (fun qr ->
        let w = Poisson.prob qr.window m in
        if w > 0. then
          results.(qr.index) <-
            results.(qr.index)
            +. (w *. binomial_expectation !visits ~n:m ~x:qr.x))
      active
  done;
  Array.map (fun r -> Float.min 1. (Float.max 0. r)) results

let cdf_single ?accuracy g ~alpha ~subset ~t ~y =
  (cdf ?accuracy g ~alpha ~subset ~queries:[| (t, y) |]).(0)

let two_valued_cdf ?accuracy (m : Mrm.t) ~queries =
  let distinct = Mrm.distinct_rewards m in
  let r =
    match distinct with
    | [| 0.; r |] -> r
    | [| r |] when r > 0. -> r
    | [| 0. |] -> 0.
    | _ ->
        invalid_arg
          "Occupation.two_valued_cdf: rewards must take values {0, r}"
  in
  if r = 0. then
    (* Y(t) = 0 almost surely. *)
    Array.map (fun (_, y) -> if y >= 0. then 1. else 0.) queries
  else begin
    let subset =
      Array.map (fun reward -> reward > 0.) m.Mrm.rewards
    in
    let scaled = Array.map (fun (t, y) -> (t, y /. r)) queries in
    cdf ?accuracy m.Mrm.generator ~alpha:m.Mrm.alpha ~subset ~queries:scaled
  end
