lib/mrm/occupation.mli: Batlife_ctmc Generator Mrm
