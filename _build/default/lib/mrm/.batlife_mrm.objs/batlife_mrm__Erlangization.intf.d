lib/mrm/erlangization.mli: Mrm
