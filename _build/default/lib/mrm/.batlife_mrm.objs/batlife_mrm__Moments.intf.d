lib/mrm/moments.mli: Mrm
