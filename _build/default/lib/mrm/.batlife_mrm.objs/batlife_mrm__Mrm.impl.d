lib/mrm/mrm.ml: Array Batlife_ctmc Float Generator List
