lib/mrm/moments.ml: Batlife_ctmc Batlife_numerics Float Generator Mrm Poisson Sparse Steady Vector
