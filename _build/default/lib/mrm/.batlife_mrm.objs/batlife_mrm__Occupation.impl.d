lib/mrm/occupation.ml: Array Batlife_ctmc Batlife_numerics Float Generator List Mrm Poisson Sparse Special
