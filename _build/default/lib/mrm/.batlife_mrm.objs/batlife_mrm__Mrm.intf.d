lib/mrm/mrm.mli: Batlife_ctmc Generator
