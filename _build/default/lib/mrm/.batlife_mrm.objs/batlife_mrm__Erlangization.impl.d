lib/mrm/erlangization.ml: Array Batlife_ctmc Batlife_numerics Float Generator Mrm Sparse Transient Vector
