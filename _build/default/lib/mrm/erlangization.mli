(** Performability distribution for general non-negative rewards by
    Erlangization.

    [P(Y(t) <= y)] is approximated by replacing the deterministic
    reward budget [y] with an Erlang([m], [m/y]) random budget: the
    product chain (model state x remaining budget stages) is a plain
    absorbing CTMC whose transient solution gives
    [P(Y(t) >= budget)].  As [m] grows the Erlang budget concentrates
    on [y] and the approximation converges (this is exactly the
    structure of the paper's discretisation for the degenerate [c = 1]
    battery, with [delta = y/m]).  The [auto] variant doubles [m]
    until two consecutive refinements agree, giving a
    reference-quality curve for models where no exact algorithm
    applies. *)

val exceedance :
  ?accuracy:float ->
  ?stages:int ->
  Mrm.t ->
  budget:float ->
  times:float array ->
  float array
(** [exceedance m ~budget ~times] approximates
    [P(Y(t) >= budget)] for each time, using [stages] (default 512)
    Erlang stages.  This is the lifetime-distribution form: with
    [budget = C] it is [P(L <= t)] for a consumption MRM. *)

val cdf :
  ?accuracy:float ->
  ?stages:int ->
  Mrm.t ->
  t:float ->
  ys:float array ->
  float array
(** [cdf m ~t ~ys] approximates [P(Y(t) <= y)] for each [y]
    (one product-chain solve per distinct positive [y]). *)

val exceedance_auto :
  ?accuracy:float ->
  ?initial_stages:int ->
  ?tolerance:float ->
  ?max_stages:int ->
  Mrm.t ->
  budget:float ->
  times:float array ->
  float array * int
(** Doubles the stage count until the maximum pointwise change is
    below [tolerance] (default 1e-4) or [max_stages] (default 16384)
    is reached; returns the curve and the stage count used. *)
