open Batlife_numerics
open Batlife_ctmc

let expected_occupations ?(accuracy = 1e-12) (m : Mrm.t) ~t =
  if t < 0. then invalid_arg "Moments.expected_occupations: negative time";
  let g = m.Mrm.generator in
  let n = Mrm.n_states m in
  let q = Generator.uniformisation_rate g in
  let weights = Poisson.weights ~accuracy (q *. t) in
  let qm = Generator.matrix g in
  let occupations = Vector.create n in
  let v = Vector.copy m.Mrm.alpha and v' = Vector.create n in
  let current = ref v and scratch = ref v' in
  (* survival(n) = P(N(t) > n); accumulate from the truncated window.
     For n < left the survival is (numerically) 1. *)
  let survival = ref 1. in
  for step = 0 to weights.Poisson.right do
    if step > 0 then begin
      Vector.blit ~src:!current ~dst:!scratch;
      Sparse.vecmat_acc ~src:!current qm ~scale:(1. /. q) ~dst:!scratch;
      let tmp = !current in
      current := !scratch;
      scratch := tmp
    end;
    survival := !survival -. Poisson.prob weights step;
    let s = Float.max !survival 0. in
    if s > 0. then Vector.axpy ~alpha:(s /. q) ~x:!current ~y:occupations
  done;
  occupations

let expected_reward ?accuracy m ~t =
  Vector.dot (expected_occupations ?accuracy m ~t) m.Mrm.rewards

let steady_rate (m : Mrm.t) =
  Steady.expected_reward m.Mrm.generator ~rewards:m.Mrm.rewards
