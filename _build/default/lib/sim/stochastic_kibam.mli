(** Slot-based stochastic evaluation of the modified KiBaM, in the
    spirit of Rao et al.'s stochastic battery model (see DESIGN.md,
    substitutions).

    Time advances in fixed slots; consumption is deterministic, while
    the bound-to-available recovery flow in each slot is gated by a
    Bernoulli trial whose success probability is the modified model's
    recovery attenuation.  In expectation one recovers the
    deterministic modified KiBaM; individual runs fluctuate, and the
    mean lifetime over many replications is what Table 1's
    "stochastic" column reports. *)

open Batlife_battery

val sample_lifetime :
  ?max_time:float ->
  slot:float ->
  Rng.t ->
  Modified_kibam.params ->
  Load_profile.t ->
  float option
(** One replication: the battery-empty time under the profile, [None]
    if it survives past [max_time] (default [1e9]). *)

val mean_lifetime :
  ?seed:int64 ->
  ?runs:int ->
  ?max_time:float ->
  slot:float ->
  Modified_kibam.params ->
  Load_profile.t ->
  float * (float * float)
(** Mean over [runs] (default 200) replications with a 95 % CI.
    Raises [Failure] if any replication survives past [max_time]. *)
