(** A binary-heap priority queue keyed by time.

    Generic discrete-event-simulation substrate: used by the example
    programs to schedule deterministic workload events alongside
    stochastic ones. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event.  Ties are broken
    arbitrarily. *)

val clear : 'a t -> unit
