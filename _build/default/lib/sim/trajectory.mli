(** Exact stochastic simulation of the KiBaMRM.

    A replication samples the CTMC jump chain of the workload; within
    each sojourn the load is constant, so the battery follows the
    {e analytic} KiBaM solution and the empty instant is located by
    root finding — no time-discretisation error anywhere.  This is the
    "simulation" curve of the paper's Figs. 7, 8 and 10. *)

open Batlife_battery
open Batlife_core

type outcome =
  | Died of float  (** battery empty at this time *)
  | Survived of Kibam.state  (** still alive at the horizon *)

type sim
(** A prepared simulator: the per-state jump tables are built once and
    shared across replications. *)

val prepare : Kibamrm.t -> sim

val run : ?horizon:float -> sim -> Rng.t -> outcome
(** One replication, truncated at [horizon] (default [1e9]). *)

val sample_lifetime : ?horizon:float -> Rng.t -> Kibamrm.t -> outcome
(** Convenience one-shot wrapper over {!prepare} and {!run}. *)

type event = {
  time : float;  (** jump instant *)
  state : int;  (** workload state entered *)
  battery : Kibam.state;  (** well contents at the jump *)
}

val sample_path : ?horizon:float -> Rng.t -> Kibamrm.t -> event list * outcome
(** Full trajectory (jump events in chronological order) plus the
    outcome; for debugging and for the example programs. *)
