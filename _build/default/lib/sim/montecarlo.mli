(** Monte-Carlo estimation of lifetime distributions.

    Replicates {!Trajectory.sample_lifetime} (the paper uses 1000
    independent runs) and reports the empirical CDF with pointwise
    confidence bands. *)

open Batlife_core

type estimate = {
  times : float array;
  cdf : float array;  (** empirical [Pr{L <= t}] *)
  ci_low : float array;
  ci_high : float array;  (** pointwise 95 % band (Wald) *)
  runs : int;
  censored : int;  (** replications that outlived the horizon *)
  samples : float array;  (** observed lifetimes (censored excluded) *)
}

val lifetime_cdf :
  ?seed:int64 ->
  ?runs:int ->
  ?horizon:float ->
  ?confidence:float ->
  Kibamrm.t ->
  times:float array ->
  estimate
(** [lifetime_cdf model ~times] runs [runs] (default 1000) independent
    replications.  Censored runs count as "alive" at every requested
    time, making the CDF estimate exact as long as
    [max times <= horizon] (default: 4x the largest requested
    time). *)

val mean_lifetime :
  ?seed:int64 -> ?runs:int -> ?horizon:float -> Kibamrm.t ->
  float * (float * float)
(** Mean observed lifetime with a 95 % CI.  Raises [Failure] if any
    replication is censored (increase the horizon). *)
