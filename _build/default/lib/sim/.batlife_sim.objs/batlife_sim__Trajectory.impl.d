lib/sim/trajectory.ml: Array Batlife_battery Batlife_core Batlife_ctmc Batlife_workload Float Generator Kibam Kibamrm List Model Rng
