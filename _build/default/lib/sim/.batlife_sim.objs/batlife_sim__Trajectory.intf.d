lib/sim/trajectory.mli: Batlife_battery Batlife_core Kibam Kibamrm Rng
