lib/sim/rng.ml: Batlife_numerics
