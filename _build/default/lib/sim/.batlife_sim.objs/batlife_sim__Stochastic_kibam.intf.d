lib/sim/stochastic_kibam.mli: Batlife_battery Load_profile Modified_kibam Rng
