lib/sim/montecarlo.ml: Array Float Printf Rng Stats Trajectory
