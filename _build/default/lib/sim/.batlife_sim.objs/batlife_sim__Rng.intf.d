lib/sim/rng.mli: Batlife_numerics
