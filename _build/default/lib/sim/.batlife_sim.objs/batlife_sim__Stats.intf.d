lib/sim/stats.mli:
