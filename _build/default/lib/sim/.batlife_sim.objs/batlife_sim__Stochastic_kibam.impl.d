lib/sim/stochastic_kibam.ml: Array Batlife_battery Float Kibam Load_profile Modified_kibam Rng Seq Stats
