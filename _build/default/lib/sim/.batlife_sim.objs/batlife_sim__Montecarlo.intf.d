lib/sim/montecarlo.mli: Batlife_core Kibamrm
