lib/sim/stats.ml: Array Batlife_numerics Float Special
