open Batlife_ctmc
open Batlife_battery
open Batlife_workload
open Batlife_core

type outcome = Died of float | Survived of Kibam.state

type event = { time : float; state : int; battery : Kibam.state }

let pick_initial rng (m : Model.t) = Rng.discrete rng m.Model.initial

(* Precomputed jump table: per state, successor indices and their
   cumulative rate fractions, so each jump is a binary-free linear scan
   over the (tiny) successor list without allocation. *)
let jump_table g =
  let n = Generator.n_states g in
  Array.init n (fun i ->
      let targets = ref [] in
      for j = n - 1 downto 0 do
        if j <> i then begin
          let r = Generator.rate g i j in
          if r > 0. then targets := (j, r) :: !targets
        end
      done;
      let targets = Array.of_list !targets in
      let total = Array.fold_left (fun acc (_, r) -> acc +. r) 0. targets in
      let acc = ref 0. in
      let cumulative =
        Array.map
          (fun (j, r) ->
            acc := !acc +. r;
            (j, !acc /. Float.max total 1e-300))
          targets
      in
      cumulative)

let pick_from_table rng table i =
  let successors = table.(i) in
  let u = Rng.uniform rng in
  let n = Array.length successors in
  let rec scan k =
    if k >= n - 1 then fst successors.(n - 1)
    else if u <= snd successors.(k) then fst successors.(k)
    else scan (k + 1)
  in
  if n = 0 then i else scan 0

type sim = {
  model : Kibamrm.t;
  table : (int * float) array array;
}

let prepare model =
  { model; table = jump_table model.Kibamrm.workload.Model.generator }

let simulate ?(horizon = 1e9) rng { model; table } ~record =
  let workload = model.Kibamrm.workload in
  let battery = model.Kibamrm.battery in
  let g = workload.Model.generator in
  let events = ref [] in
  let rec go time state charge =
    if record then events := { time; state; battery = charge } :: !events;
    let load = Model.current workload state in
    let exit = Generator.exit_rate g state in
    let sojourn =
      if exit <= 0. then infinity else Rng.exponential rng ~rate:exit
    in
    let dt = Float.min sojourn (horizon -. time) in
    match Kibam.empty_within battery ~load ~dt charge with
    | Some tau -> Died (time +. tau)
    | None ->
        if time +. dt >= horizon then
          Survived (Kibam.step battery ~load ~dt charge)
        else
          let charge' = Kibam.step battery ~load ~dt:sojourn charge in
          go (time +. sojourn) (pick_from_table rng table state) charge'
  in
  let outcome = go 0. (pick_initial rng workload) (Kibam.initial battery) in
  (List.rev !events, outcome)

let run ?horizon s rng = snd (simulate ?horizon rng s ~record:false)

let sample_lifetime ?horizon rng model = run ?horizon (prepare model) rng

let sample_path ?horizon rng model =
  simulate ?horizon rng (prepare model) ~record:true
