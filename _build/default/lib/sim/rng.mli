(** Alias of {!Batlife_numerics.Rng} (see there for documentation). *)

include module type of Batlife_numerics.Rng
