(* Re-export: the PRNG lives in the numerics substrate (it is needed
   below the simulation layer, e.g. by trace-driven workloads), but
   Batlife_sim.Rng remains the canonical name for simulation code. *)
include Batlife_numerics.Rng
