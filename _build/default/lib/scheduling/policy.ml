open Batlife_sim

type t = Sequential | Round_robin | Best_available | Random of int

let name = function
  | Sequential -> "sequential"
  | Round_robin -> "round robin"
  | Best_available -> "best available"
  | Random _ -> "random"

type state = { rng : Rng.t option }

let initial_state = function
  | Random seed -> { rng = Some (Rng.create ~seed:(Int64.of_int seed) ()) }
  | Sequential | Round_robin | Best_available -> { rng = None }

let choose policy state ~previous pack =
  let usable = Pack.usable_cells pack in
  match usable with
  | [] -> None
  | first :: _ -> (
      match policy with
      | Sequential -> Some first
      | Best_available -> Pack.best_available pack
      | Round_robin ->
          (* Smallest usable index strictly after [previous], wrapping
             around. *)
          let start = match previous with Some i -> i | None -> -1 in
          let after = List.filter (fun i -> i > start) usable in
          Some (match after with i :: _ -> i | [] -> first)
      | Random _ -> (
          match state.rng with
          | Some rng ->
              let arr = Array.of_list usable in
              Some arr.(Rng.int_below rng (Array.length arr))
          | None -> Some first))
