open Batlife_battery

type t = {
  battery : Kibam.params;
  cells : Kibam.state array;
  retired : bool array;
}

let create ~battery ~n =
  if n < 1 then invalid_arg "Pack.create: need at least one cell";
  {
    battery;
    cells = Array.init n (fun _ -> Kibam.initial battery);
    retired = Array.make n false;
  }

let n_cells p = Array.length p.cells

let cell p i = p.cells.(i)

let available p i = p.cells.(i).Kibam.available

let total_available p =
  Array.fold_left (fun acc s -> acc +. s.Kibam.available) 0. p.cells

let total_charge p =
  Array.fold_left
    (fun acc s -> acc +. s.Kibam.available +. s.Kibam.bound)
    0. p.cells

let usable ?(threshold = 1e-9) p i =
  (not p.retired.(i)) && available p i > threshold

let retire p i =
  if p.retired.(i) then p
  else begin
    let retired = Array.copy p.retired in
    retired.(i) <- true;
    { p with retired }
  end

let retired p i = p.retired.(i)

let usable_cells ?threshold p =
  let acc = ref [] in
  for i = n_cells p - 1 downto 0 do
    if usable ?threshold p i then acc := i :: !acc
  done;
  !acc

let step p ~serving ~load ~dt =
  if dt < 0. then invalid_arg "Pack.step: negative duration";
  let cells =
    Array.mapi
      (fun i s ->
        let cell_load = if serving = Some i then load else 0. in
        let s' = Kibam.step p.battery ~load:cell_load ~dt s in
        (* Clamp tiny numerical undershoot of the serving cell. *)
        if s'.Kibam.available < 0. then { s' with Kibam.available = 0. }
        else s')
      p.cells
  in
  { p with cells }

let best_available ?threshold p =
  let best = ref None in
  Array.iteri
    (fun i s ->
      if usable ?threshold p i then
        match !best with
        | Some (_, a) when a >= s.Kibam.available -> ()
        | _ -> best := Some (i, s.Kibam.available))
    p.cells;
  Option.map fst !best
