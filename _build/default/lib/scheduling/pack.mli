(** A pack of identical KiBaM batteries.

    Multi-battery systems are the natural application of the paper's
    recovery analysis (and the subject of the authors' follow-up work
    on battery scheduling): while one battery serves the load, the
    others idle and their bound charge diffuses over, so the *order*
    in which batteries are used changes the system lifetime. *)

open Batlife_battery

type t = private {
  battery : Kibam.params;  (** per-cell parameters *)
  cells : Kibam.state array;  (** current fill of each cell *)
  retired : bool array;
      (** cells permanently taken offline (reached their cutoff);
          a retired cell still holds charge but cannot serve *)
}

val create : battery:Kibam.params -> n:int -> t
(** [n] fully charged cells.  Raises [Invalid_argument] for [n < 1]. *)

val n_cells : t -> int

val cell : t -> int -> Kibam.state

val available : t -> int -> float
(** Available charge of cell [i]. *)

val total_available : t -> float

val total_charge : t -> float
(** Sum of both wells over all cells. *)

val usable : ?threshold:float -> t -> int -> bool
(** Whether cell [i] can serve a load right now: not retired and
    available charge above [threshold] (default 1e-9). *)

val retire : t -> int -> t
(** Permanently take cell [i] offline (it hit its cutoff while
    serving).  Idempotent. *)

val retired : t -> int -> bool

val usable_cells : ?threshold:float -> t -> int list

val step : t -> serving:int option -> load:float -> dt:float -> t
(** Advance the pack by [dt]: cell [serving] (if any) draws [load],
    all other cells idle (recover).  Pure — returns a new pack. *)

val best_available : ?threshold:float -> t -> int option
(** Index of the usable cell with the largest available charge. *)
