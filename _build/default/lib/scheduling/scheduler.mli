(** Deterministic evaluation of a scheduling policy on a load
    profile.

    Time advances in slots; at every slot boundary (and immediately
    when the serving cell empties) the policy re-decides.  Between
    decisions the pack evolves by the exact analytic KiBaM step: the
    serving cell discharges, the others recover.  A cell that empties
    while serving is {e retired} (cutoff) unless [revive] is set; the
    system dies the moment a positive load cannot be served by any
    usable cell. *)

open Batlife_battery

type outcome = {
  lifetime : float option;  (** [None]: survived to [max_time] *)
  delivered : float;  (** total charge delivered to the load *)
  switches : int;  (** number of server changes *)
  final : Pack.t;  (** pack state at death / horizon *)
}

val run :
  ?slot:float ->
  ?max_time:float ->
  ?threshold:float ->
  ?revive:bool ->
  policy:Policy.t ->
  battery:Kibam.params ->
  n:int ->
  Load_profile.t ->
  outcome
(** [run ~policy ~battery ~n profile] with decision slot [slot]
    (default: 1/100 of the single-cell continuous lifetime at the
    profile's average positive load) and horizon [max_time] (default
    [1e9]). *)

val trace :
  ?slot:float ->
  ?max_time:float ->
  ?revive:bool ->
  policy:Policy.t ->
  battery:Kibam.params ->
  n:int ->
  t_end:float ->
  Load_profile.t ->
  (float * float array) array
(** Sampled per-cell available charge [(t, [|y1 of each cell|])] —
    for plotting how the policy shuttles the load around. *)

val compare_policies :
  ?slot:float ->
  ?max_time:float ->
  ?revive:bool ->
  policies:Policy.t list ->
  battery:Kibam.params ->
  n:int ->
  Load_profile.t ->
  (Policy.t * outcome) list
