open Batlife_battery

type outcome = {
  lifetime : float option;
  delivered : float;
  switches : int;
  final : Pack.t;
}

let default_slot ~battery ~profile =
  let average = Float.max (Load_profile.average_load profile) 1e-12 in
  Kibam.lifetime_constant battery ~load:average /. 100.

(* One decision epoch: serve [load] for up to [dt] from [server];
   returns (elapsed, pack', died_mid_slot). *)
let serve pack ~server ~load ~dt =
  match server with
  | None ->
      if load > 0. then (0., pack, true)
      else (dt, Pack.step pack ~serving:None ~load:0. ~dt, false)
  | Some i ->
      if load <= 0. then (dt, Pack.step pack ~serving:None ~load:0. ~dt, false)
      else begin
        let cell = Pack.cell pack i in
        match
          Kibam.empty_within pack.Pack.battery ~load ~dt cell
        with
        | Some tau ->
            (* The serving cell dies at tau: advance everyone to tau
               and let the caller re-decide. *)
            (tau, Pack.step pack ~serving:(Some i) ~load ~dt:tau, true)
        | None -> (dt, Pack.step pack ~serving:(Some i) ~load ~dt, false)
      end

let run ?slot ?(max_time = 1e9) ?threshold ?(revive = false) ~policy ~battery
    ~n profile =
  let slot =
    match slot with Some s -> s | None -> default_slot ~battery ~profile
  in
  if slot <= 0. then invalid_arg "Scheduler.run: non-positive slot";
  let state = Policy.initial_state policy in
  let rec go time pack previous switches delivered segs =
    if time >= max_time then
      { lifetime = None; delivered; switches; final = pack }
    else
      match segs () with
      | Seq.Nil -> { lifetime = None; delivered; switches; final = pack }
      | Seq.Cons ((duration, load), rest) ->
          let seg_end = Float.min (time +. duration) max_time in
          let rec within time pack previous switches delivered =
            if time >= seg_end *. (1. -. 1e-15) || time >= max_time then
              (time, pack, previous, switches, delivered, false)
            else begin
              let dt = Float.min slot (seg_end -. time) in
              let server =
                if load > 0. then Policy.choose policy state ~previous pack
                else None
              in
              let switches =
                match (server, previous) with
                | Some s, Some p when s <> p -> switches + 1
                | Some _, None -> switches
                | _ -> switches
              in
              let elapsed, pack', died = serve pack ~server ~load ~dt in
              let delivered = delivered +. (load *. elapsed) in
              let time = time +. elapsed in
              if died then begin
                (* The serving cell emptied mid-slot: retire it (unless
                   reviving) and re-decide immediately; the system is
                   dead when nothing can serve. *)
                let pack' =
                  match server with
                  | Some i when not revive -> Pack.retire pack' i
                  | Some _ | None -> pack'
                in
                if Pack.usable_cells ?threshold pack' <> [] then
                  within time pack'
                    (match server with Some _ -> server | None -> previous)
                    switches delivered
                else (time, pack', server, switches, delivered, true)
              end
              else within time pack' server switches delivered
            end
          in
          let time, pack, previous, switches, delivered, dead =
            within time pack previous switches delivered
          in
          if dead then
            { lifetime = Some time; delivered; switches; final = pack }
          else if Float.is_finite duration then
            go time pack previous switches delivered rest
          else { lifetime = None; delivered; switches; final = pack }
  in
  go 0.
    (Pack.create ~battery ~n)
    None 0 0.
    (Load_profile.segments_from profile 0.)

let trace ?slot ?(max_time = 1e9) ?(revive = false) ~policy ~battery ~n ~t_end
    profile =
  let slot =
    match slot with Some s -> s | None -> default_slot ~battery ~profile
  in
  let state = Policy.initial_state policy in
  let samples = ref [] in
  let record time pack =
    samples :=
      (time, Array.init (Pack.n_cells pack) (Pack.available pack)) :: !samples
  in
  let rec go time pack previous segs =
    record time pack;
    if time < Float.min t_end max_time then
      match segs () with
      | Seq.Nil -> ()
      | Seq.Cons ((duration, load), rest) ->
          let seg_end = Float.min (time +. duration) (Float.min t_end max_time) in
          let rec within time pack previous =
            if time >= seg_end *. (1. -. 1e-15) then (time, pack, previous, false)
            else begin
              let dt = Float.min slot (seg_end -. time) in
              let server =
                if load > 0. then Policy.choose policy state ~previous pack
                else None
              in
              let elapsed, pack', died = serve pack ~server ~load ~dt in
              let pack' =
                match (died, server) with
                | true, Some i when not revive -> Pack.retire pack' i
                | _ -> pack'
              in
              let time = time +. elapsed in
              record time pack';
              if died && Pack.usable_cells pack' = [] then
                (time, pack', server, true)
              else within time pack' (if server <> None then server else previous)
            end
          in
          let time, pack, previous, dead = within time pack previous in
          if not dead then go time pack previous rest
  in
  go 0. (Pack.create ~battery ~n) None (Load_profile.segments_from profile 0.);
  Array.of_list (List.rev !samples)

let compare_policies ?slot ?max_time ?revive ~policies ~battery ~n profile =
  List.map
    (fun policy ->
      (policy, run ?slot ?max_time ?revive ~policy ~battery ~n profile))
    policies
