lib/scheduling/policy.mli: Pack
