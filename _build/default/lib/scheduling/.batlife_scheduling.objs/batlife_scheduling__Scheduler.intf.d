lib/scheduling/scheduler.mli: Batlife_battery Kibam Load_profile Pack Policy
