lib/scheduling/scheduler.ml: Array Batlife_battery Float Kibam List Load_profile Pack Policy Seq
