lib/scheduling/pack.ml: Array Batlife_battery Kibam Option
