lib/scheduling/policy.ml: Array Batlife_sim Int64 List Pack Rng
