lib/scheduling/pack.mli: Batlife_battery Kibam
