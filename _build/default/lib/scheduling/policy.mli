(** Battery-scheduling policies.

    At each decision point (slot boundary, or the moment the serving
    cell empties) the policy picks which usable cell serves the load
    next. *)

type t =
  | Sequential
      (** drain the lowest-indexed usable cell — "use battery 1 until
          it dies, then battery 2"; the no-scheduling baseline.  Note
          that a cell drained to (just above) the cutoff and switched
          away from may recover past the usability threshold and
          become eligible again; only a cell that actually hits the
          cutoff while serving is retired for good *)
  | Round_robin
      (** rotate to the next usable cell after the previous server *)
  | Best_available
      (** greedy: serve from the cell with the most available charge,
          maximising every cell's recovery headroom *)
  | Random of int
      (** uniformly random usable cell (seeded); a sanity baseline
          between sequential and round robin *)

val name : t -> string

type state
(** Mutable policy state (rotation pointer / RNG). *)

val initial_state : t -> state

val choose : t -> state -> previous:int option -> Pack.t -> int option
(** Pick the next serving cell among the usable ones; [None] when no
    cell is usable.  [previous] is the cell that served last (used by
    round robin). *)
