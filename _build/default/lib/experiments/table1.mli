(** Table 1: experimental vs computed lifetimes for the Rao et al.
    battery under continuous, 1 Hz and 0.2 Hz square-wave loads.

    Columns reproduced by this code: the analytic KiBaM (with [k]
    fitted to the 90-minute continuous-load measurement, and with the
    paper's own [k = 4.5e-5/s]), the deterministic modified KiBaM
    (calibrated as in DESIGN.md) and its slot-based stochastic
    evaluation.  The "Exp." column is the published measurement,
    carried as reference constants. *)

type row = {
  label : string;
  experimental_min : float;
  kibam_min : float;  (** analytic KiBaM, fitted k *)
  kibam_paper_k_min : float;  (** analytic KiBaM, k = 4.5e-5/s *)
  modified_min : float;  (** modified KiBaM, deterministic *)
  modified_stochastic_min : float;  (** modified KiBaM, stochastic mean *)
}

val compute : ?stochastic_runs:int -> unit -> row list

val run : ?out_dir:string -> ?stochastic_runs:int -> unit -> unit
(** Compute, print the table, and save [table1.csv]. *)
