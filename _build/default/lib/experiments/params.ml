open Batlife_battery
open Batlife_workload
open Batlife_core

let capacity_as = 7200.

let on_current_a = 0.96

let c_fraction = 0.625

let k_per_second = 4.5e-5

let experimental_lifetimes_min =
  [ ("continuous", 90.); ("1 Hz", 193.); ("0.2 Hz", 230.) ]

let battery_two_well () =
  Kibam.params ~capacity:capacity_as ~c:c_fraction ~k:k_per_second

let battery_single_well () = Kibam.params ~capacity:capacity_as ~c:1. ~k:0.

let battery_available_only () =
  Kibam.params ~capacity:(c_fraction *. capacity_as) ~c:1. ~k:0.

let capacity_mah = 800.

(* The paper prints "k = 4.5e-5/s = 1.96e-2/h", but 4.5e-5/s converts
   to 0.162/h, and only the correct conversion reproduces the paper's
   own Fig. 10/11 numbers (99% depletion at ~23 h; ~95% vs ~89%
   depletion at 20 h in Fig. 11).  With the printed 1.96e-2/h those
   become 19 h and 99.4%/96.9%.  We conclude the printed value is a
   typo and use the conversion; see EXPERIMENTS.md. *)
let k_per_hour = Units.per_second_to_per_hour k_per_second

let battery_phone_two_well () =
  Kibam.params ~capacity:capacity_mah ~c:c_fraction ~k:k_per_hour

let battery_phone_single_well () =
  Kibam.params ~capacity:capacity_mah ~c:1. ~k:0.

let battery_phone_small () = Kibam.params ~capacity:500. ~c:1. ~k:0.

let onoff_model ?(k = 1) ~frequency () =
  Onoff.model ~frequency ~k ~on_current:on_current_a ()

let onoff_kibamrm ?k ~frequency battery =
  Kibamrm.create ~workload:(onoff_model ?k ~frequency ()) ~battery

let simple_kibamrm battery =
  Kibamrm.create ~workload:(Simple.model ()) ~battery

let burst_kibamrm battery =
  Kibamrm.create ~workload:(Burst.model ()) ~battery

let grid lo hi step =
  let n = int_of_float (Float.round ((hi -. lo) /. step)) + 1 in
  Array.init n (fun i -> lo +. (step *. float_of_int i))

let onoff_times () = grid 6000. 20000. 250.

let phone_times () = grid 0.5 30. 0.5

let results_dir = "results"
