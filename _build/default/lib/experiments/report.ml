open Batlife_numerics
open Batlife_core
open Batlife_sim
open Batlife_output

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let series_of_curve ~name (c : Lifetime.curve) =
  Series.create ~name ~xs:c.Lifetime.times ~ys:c.Lifetime.probabilities

let series_of_estimate ~name (e : Montecarlo.estimate) =
  Series.create ~name ~xs:e.Montecarlo.times ~ys:e.Montecarlo.cdf

let quantile_of ~times ~probs p =
  let interp = Interp.create ~xs:times ~ys:probs in
  Interp.inverse interp p

let curve_summary ~name (c : Lifetime.curve) =
  Printf.sprintf
    "%-26s states=%8d nnz=%9d iters=%6d  median=%8.1f  q99=%8.1f" name
    c.Lifetime.states c.Lifetime.nnz c.Lifetime.iterations
    (Lifetime.quantile c 0.5) (Lifetime.quantile c 0.99)

let estimate_summary ~name (e : Montecarlo.estimate) =
  let median =
    quantile_of ~times:e.Montecarlo.times ~probs:e.Montecarlo.cdf 0.5
  and q99 =
    quantile_of ~times:e.Montecarlo.times ~probs:e.Montecarlo.cdf 0.99
  in
  let mean_txt =
    if Array.length e.Montecarlo.samples > 0 && e.Montecarlo.censored = 0 then
      let s = Stats.summarize e.Montecarlo.samples in
      Printf.sprintf "mean=%8.1f sd=%6.1f" s.Stats.mean s.Stats.std_dev
    else Printf.sprintf "censored=%d" e.Montecarlo.censored
  in
  Printf.sprintf "%-26s runs=%6d %s  median=%8.1f  q99=%8.1f" name
    e.Montecarlo.runs mean_txt median q99

let save_figure ~dir ~stem ~title ~xlabel series =
  ensure_dir dir;
  let path name = Filename.concat dir name in
  Csv.write_dat ~path:(path (stem ^ ".dat")) series;
  Csv.write_csv ~path:(path (stem ^ ".csv")) series;
  Csv.write_gnuplot_script
    ~path:(path (stem ^ ".gp"))
    ~data_file:(stem ^ ".dat") ~title ~xlabel ~ylabel:"Pr[battery empty]"
    series;
  Printf.printf "  wrote %s.{dat,csv,gp} under %s/\n" stem dir

let heading title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar
