open Batlife_battery
open Batlife_output

let compute () =
  let p = Params.battery_two_well () in
  let profile =
    Load_profile.square_wave ~frequency:0.001 ~on_load:Params.on_current_a
  in
  let trace = Kibam.trace p profile ~t_end:12000. ~sample_step:25. in
  let times = Array.map (fun (t, _, _) -> t) trace in
  let y1 = Array.map (fun (_, y1, _) -> y1) trace in
  let y2 = Array.map (fun (_, _, y2) -> y2) trace in
  [
    Series.create ~name:"y1 (available charge)" ~xs:times ~ys:y1;
    Series.create ~name:"y2 (bound charge)" ~xs:times ~ys:y2;
  ]

let run ?(out_dir = Params.results_dir) () =
  Report.heading
    "Fig. 2: available/bound charge under a 0.001 Hz square wave";
  let series = compute () in
  (match series with
  | [ y1; y2 ] ->
      let check t =
        let v1 =
          (Batlife_numerics.Interp.create ~xs:(Series.xs y1) ~ys:(Series.ys y1)
          |> fun i -> Batlife_numerics.Interp.eval i t)
        and v2 =
          (Batlife_numerics.Interp.create ~xs:(Series.xs y2) ~ys:(Series.ys y2)
          |> fun i -> Batlife_numerics.Interp.eval i t)
        in
        Printf.printf "  t=%6.0f s  y1=%7.1f As  y2=%7.1f As\n" t v1 v2
      in
      List.iter check [ 0.; 500.; 1000.; 4000.; 8000.; 12000. ]
  | _ -> ());
  Printf.printf
    "  (paper: y1 starts at 4500, saw-tooths downward; y2 starts at 2700\n\
    \   and drains monotonically, faster as h2 - h1 grows.)\n";
  Report.save_figure ~dir:out_dir ~stem:"fig2"
    ~title:"KiBaM well contents, square wave f=0.001 Hz"
    ~xlabel:"t (seconds)" series
