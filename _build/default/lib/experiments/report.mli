(** Shared reporting helpers for the experiment harness. *)

open Batlife_core
open Batlife_sim
open Batlife_output

val ensure_dir : string -> unit
(** Create the output directory if needed. *)

val series_of_curve : name:string -> Lifetime.curve -> Series.t

val series_of_estimate : name:string -> Montecarlo.estimate -> Series.t

val curve_summary : name:string -> Lifetime.curve -> string
(** One line: states / nnz / iterations / median / 99 %-quantile. *)

val estimate_summary : name:string -> Montecarlo.estimate -> string

val save_figure :
  dir:string ->
  stem:string ->
  title:string ->
  xlabel:string ->
  Series.t list ->
  unit
(** Writes [<stem>.dat], [<stem>.csv] and [<stem>.gp] under [dir]. *)

val heading : string -> unit
(** Prints a section banner. *)
