(** Fig. 2: evolution of the available- and bound-charge wells under a
    square-wave load of frequency 0.001 Hz (500 s on / 500 s off,
    I = 0.96 A, C = 7200 As, c = 0.625, k = 4.5e-5/s), from the
    analytic KiBaM. *)

open Batlife_output

val compute : unit -> Series.t list
(** Two series: [y1] (available) and [y2] (bound) over 0..12000 s. *)

val run : ?out_dir:string -> unit -> unit
