(** Shared experiment parameters, straight from the paper.

    Two unit systems are in play (see {!Batlife_battery.Units}): the
    on/off experiments use seconds/Ampere/Ampere-seconds, the simple &
    burst experiments hours/milliAmpere/milliAmpere-hours. *)

open Batlife_battery
open Batlife_workload
open Batlife_core

(** {1 The Rao et al. battery (Table 1, Figs. 2, 7, 8, 9)} *)

val capacity_as : float
(** 7200 As (= 2000 mAh). *)

val on_current_a : float
(** 0.96 A square-wave / on-state current. *)

val c_fraction : float
(** c = 0.625. *)

val k_per_second : float
(** k = 4.5e-5 /s — the paper's calibrated diffusion constant. *)

val experimental_lifetimes_min : (string * float) list
(** Measured lifetimes from Rao et al. [9] as cited in Table 1:
    continuous 90, 1 Hz 193, 0.2 Hz 230 (minutes). *)

val battery_two_well : unit -> Kibam.params
(** C = 7200 As, c = 0.625, k = 4.5e-5/s. *)

val battery_single_well : unit -> Kibam.params
(** C = 7200 As, c = 1 (degenerate). *)

val battery_available_only : unit -> Kibam.params
(** C = 4500 As, c = 1 — Fig. 9's third scenario. *)

(** {1 The cell-phone battery (Figs. 10, 11)} *)

val capacity_mah : float
(** 800 mAh. *)

val k_per_hour : float
(** 0.162 /h = 4.5e-5/s.  The paper prints "1.96e-2/h" next to
    4.5e-5/s, which is not the unit conversion; only the correct
    conversion reproduces the paper's own Fig. 10/11 probabilities
    (see the note in params.ml and EXPERIMENTS.md). *)

val battery_phone_two_well : unit -> Kibam.params
(** C = 800 mAh, c = 0.625, k = 1.96e-2 /h. *)

val battery_phone_single_well : unit -> Kibam.params
(** C = 800 mAh, c = 1. *)

val battery_phone_small : unit -> Kibam.params
(** C = 500 mAh, c = 1 — Fig. 10's left curves. *)

(** {1 Models} *)

val onoff_model : ?k:int -> frequency:float -> unit -> Model.t
(** Erlang-K on/off workload at [frequency], on-current 0.96 A. *)

val onoff_kibamrm : ?k:int -> frequency:float -> Kibam.params -> Kibamrm.t

val simple_kibamrm : Kibam.params -> Kibamrm.t

val burst_kibamrm : Kibam.params -> Kibamrm.t

(** {1 Time grids} *)

val onoff_times : unit -> float array
(** 6000 .. 20000 s, step 250 (Figs. 7, 8, 9). *)

val phone_times : unit -> float array
(** 0.5 .. 30 h, step 0.5 (Figs. 10, 11). *)

val results_dir : string
(** Default output directory for .dat/.csv artefacts. *)
