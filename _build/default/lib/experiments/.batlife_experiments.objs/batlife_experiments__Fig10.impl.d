lib/experiments/fig10.ml: Array Batlife_core Batlife_mrm Batlife_output Batlife_sim Batlife_workload Erlangization Lifetime Model Montecarlo Mrm Params Printf Report Simple
