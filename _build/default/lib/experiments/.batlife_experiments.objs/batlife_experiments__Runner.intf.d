lib/experiments/runner.mli:
