lib/experiments/params.ml: Array Batlife_battery Batlife_core Batlife_workload Burst Float Kibam Kibamrm Onoff Simple Units
