lib/experiments/fig8.mli: Batlife_output Series
