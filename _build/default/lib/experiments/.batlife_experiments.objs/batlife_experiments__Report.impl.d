lib/experiments/report.ml: Array Batlife_core Batlife_numerics Batlife_output Batlife_sim Csv Filename Interp Lifetime Montecarlo Printf Series Stats String Sys
