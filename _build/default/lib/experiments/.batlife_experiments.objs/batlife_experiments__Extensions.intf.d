lib/experiments/extensions.mli:
