lib/experiments/report.mli: Batlife_core Batlife_output Batlife_sim Lifetime Montecarlo Series
