lib/experiments/runner.ml: Extensions Fig10 Fig11 Fig2 Fig7 Fig8 Fig9 List Params Printf String Table1
