lib/experiments/fig7.mli: Batlife_output Series
