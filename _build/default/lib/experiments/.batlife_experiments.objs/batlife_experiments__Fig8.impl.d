lib/experiments/fig8.ml: Batlife_core Batlife_sim Lifetime List Montecarlo Params Printf Report
