lib/experiments/fig11.ml: Batlife_core Batlife_numerics Batlife_sim Interp Lifetime Montecarlo Params Printf Report
