lib/experiments/fig7.ml: Array Batlife_core Batlife_mrm Batlife_output Batlife_sim Batlife_workload Lifetime List Model Montecarlo Mrm Occupation Params Printf Report
