lib/experiments/fig10.mli: Batlife_output Series
