lib/experiments/params.mli: Batlife_battery Batlife_core Batlife_workload Kibam Kibamrm Model
