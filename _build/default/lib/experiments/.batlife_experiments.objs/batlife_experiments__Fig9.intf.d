lib/experiments/fig9.mli: Batlife_output Series
