lib/experiments/table1.ml: Batlife_battery Batlife_output Batlife_sim Filename Fit Float Kibam List Load_profile Modified_kibam Params Printf Report Stochastic_kibam Table Units
