lib/experiments/fig2.ml: Array Batlife_battery Batlife_numerics Batlife_output Kibam List Load_profile Params Printf Report Series
