lib/experiments/fig2.mli: Batlife_output Series
