lib/experiments/fig9.ml: Batlife_core Lifetime Params Printf Report
