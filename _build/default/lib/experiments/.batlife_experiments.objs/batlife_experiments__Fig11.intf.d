lib/experiments/fig11.mli: Batlife_output Series
