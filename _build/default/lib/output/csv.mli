(** Writers for series data: CSV (one x column shared by all series,
    blank cells where a series has no sample at that x) and
    gnuplot-style .dat blocks (one block per series). *)

val write_csv : path:string -> Series.t list -> unit
(** All series are merged on the union of their x values (sorted). *)

val write_dat : path:string -> Series.t list -> unit
(** Gnuplot format: per series a commented header, [x y] lines, and a
    double blank-line separator. *)

val write_gnuplot_script :
  path:string ->
  data_file:string ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  Series.t list ->
  unit
(** A ready-to-run [gnuplot] script plotting every series of
    [data_file] (written by {!write_dat}) by block index. *)
