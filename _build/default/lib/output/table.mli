(** Aligned plain-text tables (for the Table 1 reproduction and the
    experiment summaries). *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] pads the columns to a common width.  Rows
    shorter than the header are padded with empty cells; [align]
    defaults to [Left] for the first column and [Right] for the
    rest. *)

val print : ?align:align list -> header:string list -> string list list -> unit

val float_cell : ?decimals:int -> float -> string
(** Format helper: fixed decimals (default 1), or ["-"] for NaN. *)
