(** Quick terminal plots of series — used by the examples so that
    [dune exec examples/...] shows the distribution shapes without any
    external plotting tool. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  Series.t list ->
  string
(** Renders all series on a shared canvas (default 72x20); each series
    is drawn with its own glyph and listed in a legend below. *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  Series.t list ->
  unit
