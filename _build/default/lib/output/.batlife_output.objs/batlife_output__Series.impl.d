lib/output/series.ml: Array Float
