lib/output/csv.mli: Series
