lib/output/ascii_plot.mli: Series
