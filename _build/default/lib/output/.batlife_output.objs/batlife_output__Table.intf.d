lib/output/table.mli:
