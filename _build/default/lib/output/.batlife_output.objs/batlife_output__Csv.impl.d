lib/output/csv.ml: Array Float Fun List Map Printf Series String
