lib/output/series.mli:
