lib/output/table.ml: Array Float List Printf String
