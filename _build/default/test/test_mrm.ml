open Batlife_ctmc
open Batlife_mrm
open Helpers

let two_state_mrm ?(rewards = [| 1.; 0. |]) ?(a = 2.) ?(b = 2.) () =
  let g = Generator.of_rates ~n:2 [ (0, 1, a); (1, 0, b) ] in
  Mrm.create ~generator:g ~rewards ~alpha:[| 1.; 0. |]

let test_create_validation () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  check_raises_invalid "rewards length" (fun () ->
      ignore (Mrm.create ~generator:g ~rewards:[| 1. |] ~alpha:[| 1.; 0. |]));
  check_raises_invalid "negative reward" (fun () ->
      ignore
        (Mrm.create ~generator:g ~rewards:[| -1.; 0. |] ~alpha:[| 1.; 0. |]));
  check_raises_invalid "alpha not a distribution" (fun () ->
      ignore
        (Mrm.create ~generator:g ~rewards:[| 1.; 0. |] ~alpha:[| 0.4; 0.4 |]))

let test_distinct_rewards () =
  let g =
    Generator.of_rates ~n:4 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 0, 1.) ]
  in
  let m =
    Mrm.create ~generator:g ~rewards:[| 5.; 0.; 5.; 2. |]
      ~alpha:[| 1.; 0.; 0.; 0. |]
  in
  Alcotest.(check (array (float 0.)))
    "distinct sorted" [| 0.; 2.; 5. |] (Mrm.distinct_rewards m);
  let lo, hi = Mrm.reward_bounds m in
  check_float "lo" 0. lo;
  check_float "hi" 5. hi

let test_scale_rewards () =
  let m = two_state_mrm () in
  let scaled = Mrm.scale_rewards 3. m in
  check_float "scaled" 3. scaled.Mrm.rewards.(0);
  check_raises_invalid "bad factor" (fun () ->
      ignore (Mrm.scale_rewards 0. m))

(* --- Occupation-time distribution --------------------------------- *)

let test_occupation_single_state () =
  (* One state, in B: W(t) = t, so P(W <= y) = 1{y >= t}. *)
  let g = Generator.of_rates ~n:1 [] in
  let result =
    Occupation.cdf g ~alpha:[| 1. |] ~subset:[| true |]
      ~queries:[| (1., 0.5); (1., 1.); (1., 2.) |]
  in
  check_float "below" 0. result.(0);
  check_float "at" 1. result.(1);
  check_float "above" 1. result.(2)

let test_occupation_no_transition () =
  (* Two states with no transitions: W(t) = t if started in B else 0. *)
  let g = Generator.of_rates ~n:2 [] in
  let alpha = [| 0.3; 0.7 |] and subset = [| true; false |] in
  let result =
    Occupation.cdf g ~alpha ~subset ~queries:[| (4., 2.); (4., 0.) |]
  in
  (* P(W <= 2) = P(start outside B) = 0.7; P(W <= 0) = 0.7 as well. *)
  check_float ~eps:1e-10 "middle" 0.7 result.(0);
  check_float ~eps:1e-10 "at zero" 0.7 result.(1)

let test_occupation_vs_transient_mean () =
  (* E[W(t)] from the distribution should match the expected
     occupation computed by Moments. *)
  let m = two_state_mrm ~a:1.5 ~b:0.7 () in
  let t = 3. in
  let subset = [| true; false |] in
  (* Numerically integrate 1 - F over y in [0, t]. *)
  let steps = 400 in
  let h = t /. float_of_int steps in
  let queries =
    Array.init (steps + 1) (fun i -> (t, h *. float_of_int i))
  in
  let cdf = Occupation.cdf m.Mrm.generator ~alpha:m.Mrm.alpha ~subset ~queries in
  let mean = ref 0. in
  for i = 0 to steps - 1 do
    mean := !mean +. (h *. 0.5 *. (2. -. cdf.(i) -. cdf.(i + 1)))
  done;
  let occ = Moments.expected_occupations m ~t in
  check_float ~eps:1e-3 "mean occupation" occ.(0) !mean

let test_occupation_symmetric_median () =
  (* Symmetric chain started in stationarity: W(t)/t has a symmetric
     distribution around 1/2, so F(t/2) = 1/2. *)
  let g = Generator.of_rates ~n:2 [ (0, 1, 3.); (1, 0, 3.) ] in
  let alpha = [| 0.5; 0.5 |] in
  let p =
    Occupation.cdf_single g ~alpha ~subset:[| true; false |] ~t:5. ~y:2.5
  in
  check_float ~eps:1e-9 "median at half" 0.5 p

let test_two_valued_cdf () =
  let m = two_state_mrm ~rewards:[| 4.; 0. |] () in
  (* P(Y(t) <= y) = P(W(t) <= y/4). *)
  let direct =
    Occupation.cdf m.Mrm.generator ~alpha:m.Mrm.alpha ~subset:[| true; false |]
      ~queries:[| (2., 1.) |]
  in
  let scaled = Occupation.two_valued_cdf m ~queries:[| (2., 4.) |] in
  check_float ~eps:1e-12 "matches occupation" direct.(0) scaled.(0)

let test_two_valued_rejects_three_values () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.) ] in
  let m =
    Mrm.create ~generator:g ~rewards:[| 0.; 1.; 2. |] ~alpha:[| 1.; 0.; 0. |]
  in
  check_raises_invalid "three values" (fun () ->
      ignore (Occupation.two_valued_cdf m ~queries:[| (1., 1.) |]))

let test_occupation_bounds_and_monotone () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.); (1, 0, 2.) ] in
  let alpha = [| 1.; 0. |] in
  let t = 4. in
  let queries = Array.init 21 (fun i -> (t, 0.2 *. float_of_int i)) in
  let cdf = Occupation.cdf g ~alpha ~subset:[| true; false |] ~queries in
  let prev = ref (-0.1) in
  Array.iter
    (fun p ->
      check_true "in [0,1]" (p >= 0. && p <= 1.);
      check_true "monotone" (p >= !prev -. 1e-12);
      prev := p)
    cdf

(* --- Erlangization -------------------------------------------------- *)

let test_erlangization_deterministic () =
  (* Single state with reward 2: Y(t) = 2t deterministically. *)
  let g = Generator.of_rates ~n:1 [] in
  let m = Mrm.create ~generator:g ~rewards:[| 2. |] ~alpha:[| 1. |] in
  let over =
    Erlangization.exceedance ~stages:2048 m ~budget:2. ~times:[| 0.5; 1.; 2. |]
  in
  check_true "before budget" (over.(0) < 0.02);
  check_true "around budget" (Float.abs (over.(1) -. 0.5) < 0.02);
  check_true "after budget" (over.(2) > 0.98)

let test_erlangization_matches_occupation () =
  let m = two_state_mrm ~rewards:[| 1.; 0. |] ~a:2. ~b:2. () in
  let t = 10. and y = 4.8 in
  let exact =
    (Occupation.two_valued_cdf m ~queries:[| (t, y) |]).(0)
  in
  let erl = (Erlangization.cdf ~stages:8192 m ~t ~ys:[| y |]).(0) in
  check_float ~eps:5e-3 "erlangization close to exact" exact erl

let test_erlangization_edge_cases () =
  let m = two_state_mrm ~rewards:[| 1.; 0. |] () in
  (* Negative budget rejected; negative y gives 0, y far above r_max*t
     gives 1. *)
  check_raises_invalid "budget" (fun () ->
      ignore (Erlangization.exceedance m ~budget:0. ~times:[| 1. |]));
  let cdf = Erlangization.cdf ~stages:128 m ~t:2. ~ys:[| -1.; 100. |] in
  check_float "negative y" 0. cdf.(0);
  check_float ~eps:1e-6 "huge y" 1. cdf.(1);
  (* Exceedance at t = 0 is 0 for a positive budget. *)
  let at0 = Erlangization.exceedance ~stages:64 m ~budget:1. ~times:[| 0. |] in
  check_float ~eps:1e-12 "t = 0" 0. at0.(0)

let test_erlangization_auto () =
  let m = two_state_mrm ~rewards:[| 1.; 0. |] () in
  let curve, stages =
    Erlangization.exceedance_auto ~tolerance:1e-3 m ~budget:3.
      ~times:[| 2.; 6.; 12. |]
  in
  check_true "stages grew" (stages >= 256);
  Array.iter (fun p -> check_true "in range" (p >= 0. && p <= 1.)) curve

(* --- Moments -------------------------------------------------------- *)

let test_expected_occupations_sum () =
  let m = two_state_mrm ~a:1.3 ~b:0.4 () in
  let t = 7. in
  let occ = Moments.expected_occupations m ~t in
  check_float ~eps:1e-9 "occupations sum to t" t (occ.(0) +. occ.(1))

let test_expected_reward_two_state () =
  (* E W_0(t) has closed form for a 2-state chain: with s = a+b,
     starting in 0: E W_0(t) = (b/s) t + (a/s^2)(1 - e^{-st}). *)
  let a = 2. and b = 0.5 in
  let m = two_state_mrm ~rewards:[| 1.; 0. |] ~a ~b () in
  let t = 3. in
  let s = a +. b in
  let expected = (b /. s *. t) +. (a /. (s *. s) *. (1. -. exp (-.s *. t))) in
  check_float ~eps:1e-9 "closed form" expected (Moments.expected_reward m ~t)

let test_steady_rate () =
  let m = two_state_mrm ~rewards:[| 6.; 0. |] ~a:1. ~b:1. () in
  check_float ~eps:1e-12 "steady rate" 3. (Moments.steady_rate m)

let suite =
  [
    case "create validation" test_create_validation;
    case "distinct rewards" test_distinct_rewards;
    case "scale rewards" test_scale_rewards;
    case "occupation: single state" test_occupation_single_state;
    case "occupation: no transitions" test_occupation_no_transition;
    case "occupation: mean matches moments" test_occupation_vs_transient_mean;
    case "occupation: symmetric median" test_occupation_symmetric_median;
    case "two-valued cdf" test_two_valued_cdf;
    case "two-valued rejects 3 values" test_two_valued_rejects_three_values;
    case "occupation bounds/monotone" test_occupation_bounds_and_monotone;
    case "erlangization: deterministic" test_erlangization_deterministic;
    case "erlangization matches occupation" test_erlangization_matches_occupation;
    case "erlangization edge cases" test_erlangization_edge_cases;
    case "erlangization auto" test_erlangization_auto;
    case "occupations sum to t" test_expected_occupations_sum;
    case "expected reward closed form" test_expected_reward_two_state;
    case "steady rate" test_steady_rate;
  ]
