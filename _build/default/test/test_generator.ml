open Batlife_numerics
open Batlife_ctmc
open Helpers

let two_state () = Generator.of_rates ~n:2 [ (0, 1, 3.); (1, 0, 1.) ]

let test_of_rates () =
  let g = two_state () in
  check_int "states" 2 (Generator.n_states g);
  check_float "rate" 3. (Generator.rate g 0 1);
  check_float "diagonal" (-3.) (Generator.rate g 0 0);
  check_float "exit" 3. (Generator.exit_rate g 0)

let test_of_rates_validation () =
  check_raises_invalid "diagonal entry" (fun () ->
      ignore (Generator.of_rates ~n:2 [ (0, 0, 1.) ]));
  check_raises_invalid "negative rate" (fun () ->
      ignore (Generator.of_rates ~n:2 [ (0, 1, -1.) ]));
  check_raises_invalid "out of range" (fun () ->
      ignore (Generator.of_rates ~n:2 [ (0, 2, 1.) ]));
  check_raises_invalid "bad labels" (fun () ->
      ignore (Generator.of_rates ~labels:[| "a" |] ~n:2 [ (0, 1, 1.) ]))

let test_duplicate_rates_sum () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.); (0, 1, 2.) ] in
  check_float "summed" 3. (Generator.rate g 0 1);
  check_float "exit" 3. (Generator.exit_rate g 0)

let test_row_sums_zero () =
  let g =
    Generator.of_rates ~n:4
      [ (0, 1, 1.); (0, 2, 2.); (1, 3, 0.5); (2, 0, 1.5); (3, 0, 4.) ]
  in
  let sums = Sparse.row_sums (Generator.matrix g) in
  Array.iteri
    (fun i s -> check_float ~eps:1e-12 (Printf.sprintf "row %d" i) 0. s)
    sums

let test_absorbing () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  check_true "state 2 absorbing" (Generator.is_absorbing g 2);
  check_true "state 0 not absorbing" (not (Generator.is_absorbing g 0));
  check_true "absorbing list" (Generator.absorbing_states g = [ 2 ])

let test_uniformisation_rate () =
  let g = two_state () in
  let q = Generator.uniformisation_rate g in
  check_true "above max exit" (q >= 3.);
  check_true "not wildly above" (q <= 3.1)

let test_uniformised_stochastic () =
  let g = two_state () in
  let q = Generator.uniformisation_rate g in
  let p = Generator.uniformised g ~q in
  let sums = Sparse.row_sums p in
  Array.iter (fun s -> check_float ~eps:1e-12 "row sum 1" 1. s) sums;
  Sparse.iter p (fun _ _ v -> check_true "non-negative" (v >= 0.));
  check_raises_invalid "rate too small" (fun () ->
      ignore (Generator.uniformised g ~q:1.))

let test_of_builder () =
  let b = Sparse.Builder.create ~rows:2 ~cols:2 () in
  Sparse.Builder.add b 0 1 2.;
  Sparse.Builder.add b 1 0 4.;
  let g = Generator.of_builder b in
  check_float "rate preserved" 2. (Generator.rate g 0 1);
  check_float "diagonal filled" (-4.) (Generator.rate g 1 1)

let test_of_builder_validation () =
  let b = Sparse.Builder.create ~rows:2 ~cols:2 () in
  Sparse.Builder.add b 0 0 1.;
  check_raises_invalid "diagonal rejected" (fun () ->
      ignore (Generator.of_builder b))

let test_of_sparse () =
  let g0 = two_state () in
  let g = Generator.of_sparse (Generator.matrix g0) in
  check_float "roundtrip rate" 3. (Generator.rate g 0 1);
  check_float "roundtrip diag" (-3.) (Generator.rate g 0 0)

let test_labels () =
  let g =
    Generator.of_rates ~labels:[| "idle"; "busy" |] ~n:2 [ (0, 1, 1.) ]
  in
  Alcotest.(check string) "label" "busy" (Generator.label g 1)

let prop_generated_rows_sum_zero =
  qcheck ~count:100 "random generators have zero row sums"
    QCheck.(
      list_of_size (Gen.int_range 1 30)
        (triple (int_range 0 5) (int_range 0 5) (float_range 0.01 10.)))
    (fun entries ->
      let rates =
        List.filter_map
          (fun (i, j, r) -> if i <> j then Some (i, j, r) else None)
          entries
      in
      let g = Generator.of_rates ~n:6 rates in
      let sums = Sparse.row_sums (Generator.matrix g) in
      Array.for_all (fun s -> Float.abs s < 1e-9) sums)

let suite =
  [
    case "of_rates" test_of_rates;
    case "of_rates validation" test_of_rates_validation;
    case "duplicates sum" test_duplicate_rates_sum;
    case "row sums zero" test_row_sums_zero;
    case "absorbing detection" test_absorbing;
    case "uniformisation rate" test_uniformisation_rate;
    case "uniformised is stochastic" test_uniformised_stochastic;
    case "of_builder" test_of_builder;
    case "of_builder validation" test_of_builder_validation;
    case "of_sparse roundtrip" test_of_sparse;
    case "labels" test_labels;
    prop_generated_rows_sum_zero;
  ]
