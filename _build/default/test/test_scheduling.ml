open Batlife_battery
open Batlife_scheduling
open Helpers

let battery () = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5

let battery_linear () = Kibam.params ~capacity:7200. ~c:1. ~k:0.

let load = 0.96

let profile () = Load_profile.constant load

(* --- Pack ------------------------------------------------------------- *)

let test_pack_create () =
  let p = Pack.create ~battery:(battery ()) ~n:3 in
  check_int "cells" 3 (Pack.n_cells p);
  check_float "available per cell" 4500. (Pack.available p 0);
  check_float "total available" 13500. (Pack.total_available p);
  check_float "total charge" 21600. (Pack.total_charge p);
  check_true "all usable" (Pack.usable_cells p = [ 0; 1; 2 ]);
  check_raises_invalid "n = 0" (fun () ->
      ignore (Pack.create ~battery:(battery ()) ~n:0))

let test_pack_step_serving () =
  let p = Pack.create ~battery:(battery ()) ~n:2 in
  let p' = Pack.step p ~serving:(Some 0) ~load ~dt:100. in
  check_true "server drained" (Pack.available p' 0 < 4500.);
  check_float ~eps:1e-9 "idle cell untouched at full" 4500.
    (Pack.available p' 1);
  (* Total charge decreases exactly by the delivered charge. *)
  check_float ~eps:1e-6 "charge balance"
    (Pack.total_charge p -. (load *. 100.))
    (Pack.total_charge p')

let test_pack_retire () =
  let p = Pack.create ~battery:(battery ()) ~n:2 in
  let p' = Pack.retire p 0 in
  check_true "retired flag" (Pack.retired p' 0);
  check_true "original untouched" (not (Pack.retired p 0));
  check_true "not usable" (not (Pack.usable p' 0));
  check_true "others unaffected" (Pack.usable p' 1);
  check_true "usable list" (Pack.usable_cells p' = [ 1 ]);
  (* Idempotent. *)
  check_true "idempotent" (Pack.retired (Pack.retire p' 0) 0)

let test_pack_best_available () =
  let p = Pack.create ~battery:(battery ()) ~n:3 in
  let p' = Pack.step p ~serving:(Some 1) ~load ~dt:1000. in
  (match Pack.best_available p' with
  | Some i -> check_true "not the drained cell" (i <> 1)
  | None -> Alcotest.fail "cells available");
  (* With everyone retired there is no best. *)
  let dead = Pack.retire (Pack.retire (Pack.retire p' 0) 1) 2 in
  check_true "no best" (Pack.best_available dead = None)

(* --- Policies ---------------------------------------------------------- *)

let test_policy_choose () =
  let p = Pack.create ~battery:(battery ()) ~n:3 in
  let pick policy previous =
    Policy.choose policy (Policy.initial_state policy) ~previous p
  in
  check_true "sequential picks first" (pick Policy.Sequential None = Some 0);
  check_true "sequential ignores previous"
    (pick Policy.Sequential (Some 1) = Some 0);
  check_true "round robin advances"
    (pick Policy.Round_robin (Some 0) = Some 1);
  check_true "round robin wraps" (pick Policy.Round_robin (Some 2) = Some 0);
  check_true "best available on fresh pack picks some cell"
    (pick Policy.Best_available None <> None);
  (match pick (Policy.Random 7) None with
  | Some i -> check_true "random in range" (i >= 0 && i < 3)
  | None -> Alcotest.fail "random must pick");
  (* Retired-only pack: nothing to choose. *)
  let dead = List.fold_left Pack.retire p [ 0; 1; 2 ] in
  check_true "nothing usable (dead pack)"
    (Policy.choose Policy.Sequential
       (Policy.initial_state Policy.Sequential)
       ~previous:None dead
    = None)

let test_policy_names () =
  List.iter
    (fun p -> check_true "non-empty name" (String.length (Policy.name p) > 0))
    [ Policy.Sequential; Policy.Round_robin; Policy.Best_available;
      Policy.Random 1 ]

(* --- Scheduler ---------------------------------------------------------- *)

let lifetime_of outcome =
  match outcome.Scheduler.lifetime with
  | Some t -> t
  | None -> Alcotest.fail "expected depletion"

let test_single_cell_matches_kibam () =
  (* One battery, any policy: the system lifetime is the plain KiBaM
     constant-load lifetime. *)
  let o =
    Scheduler.run ~policy:Policy.Sequential ~battery:(battery ()) ~n:1
      (profile ())
  in
  check_close ~rel:1e-6 "single cell lifetime"
    (Kibam.lifetime_constant (battery ()) ~load)
    (lifetime_of o);
  check_close ~rel:1e-6 "delivered = load * lifetime"
    (load *. lifetime_of o) o.Scheduler.delivered

let test_scheduling_gain () =
  (* The headline result of battery scheduling: with recovery,
     alternating between cells beats draining them one after the
     other. *)
  let run policy =
    lifetime_of
      (Scheduler.run ~slot:30. ~policy ~battery:(battery ()) ~n:2 (profile ()))
  in
  let sequential = run Policy.Sequential in
  let round_robin = run Policy.Round_robin in
  let best = run Policy.Best_available in
  check_true "round robin beats sequential"
    (round_robin > 1.05 *. sequential);
  check_true "best available at least round robin"
    (best >= round_robin -. 1.);
  (* And nobody can beat the total-charge bound. *)
  check_true "within physical bound"
    (best <= (2. *. 7200. /. load) +. 1.)

let test_no_gain_without_recovery () =
  (* For the degenerate battery (c = 1, k = 0) there is nothing to
     recover, so scheduling cannot help: every policy gives the ideal
     2 C / I lifetime. *)
  let run policy =
    lifetime_of
      (Scheduler.run ~slot:50. ~policy ~battery:(battery_linear ()) ~n:2
         (profile ()))
  in
  let expected = 2. *. 7200. /. load in
  List.iter
    (fun policy ->
      check_close ~rel:1e-6
        (Policy.name policy ^ " hits the linear bound")
        expected (run policy))
    [ Policy.Sequential; Policy.Round_robin; Policy.Best_available ]

let test_revive_extends_lifetime () =
  let run revive =
    lifetime_of
      (Scheduler.run ~revive ~slot:30. ~policy:Policy.Sequential
         ~battery:(battery ()) ~n:2 (profile ()))
  in
  check_true "revival only helps" (run true >= run false -. 1e-6)

let test_survives_idle_profile () =
  let o =
    Scheduler.run ~max_time:1000. ~policy:Policy.Round_robin
      ~slot:10. ~battery:(battery ()) ~n:2 (Load_profile.constant 0.)
  in
  check_true "no depletion without load" (o.Scheduler.lifetime = None);
  check_float "nothing delivered" 0. o.Scheduler.delivered

let test_intermittent_load () =
  (* On/off square wave: cells also recover during global off periods. *)
  let profile = Load_profile.square_wave ~frequency:0.001 ~on_load:load in
  let o =
    Scheduler.run ~slot:100. ~policy:Policy.Round_robin ~battery:(battery ())
      ~n:2 profile
  in
  let continuous =
    lifetime_of
      (Scheduler.run ~slot:100. ~policy:Policy.Round_robin
         ~battery:(battery ()) ~n:2 (Load_profile.constant load))
  in
  check_true "intermittent outlives continuous"
    (lifetime_of o > 1.5 *. continuous)

let test_trace_shape () =
  let tr =
    Scheduler.trace ~slot:500. ~policy:Policy.Round_robin
      ~battery:(battery ()) ~n:2 ~t_end:5000. (profile ())
  in
  check_true "has samples" (Array.length tr > 5);
  let t0, a0 = tr.(0) in
  check_float "starts at 0" 0. t0;
  check_float "full cells" 4500. a0.(0);
  Array.iter
    (fun (_, a) ->
      Array.iter
        (fun v -> check_true "within range" (v >= 0. && v <= 4500.0001))
        a)
    tr

let test_compare_policies () =
  let results =
    Scheduler.compare_policies ~slot:50.
      ~policies:[ Policy.Sequential; Policy.Round_robin ]
      ~battery:(battery ()) ~n:2 (profile ())
  in
  check_int "two results" 2 (List.length results);
  List.iter
    (fun (_, o) -> check_true "all deplete" (o.Scheduler.lifetime <> None))
    results

let test_validation () =
  check_raises_invalid "bad slot" (fun () ->
      ignore
        (Scheduler.run ~slot:0. ~policy:Policy.Sequential
           ~battery:(battery ()) ~n:1 (profile ())))

let test_random_policy_deterministic () =
  let run () =
    (Scheduler.run ~slot:50. ~policy:(Policy.Random 99) ~battery:(battery ())
       ~n:3 (profile ()))
      .Scheduler.lifetime
  in
  check_true "same seed, same outcome" (run () = run ());
  let other =
    (Scheduler.run ~slot:50. ~policy:(Policy.Random 100)
       ~battery:(battery ()) ~n:3 (profile ()))
      .Scheduler.lifetime
  in
  (* Different seeds may coincide in lifetime, but the switch pattern
     essentially never does; just check both deplete. *)
  check_true "other seed also depletes" (other <> None)

let test_trace_with_revive () =
  (* With revival the pack shuttles charge indefinitely longer; the
     trace keeps sampling past the first cell deaths. *)
  let tr =
    Scheduler.trace ~revive:true ~slot:200. ~policy:Policy.Round_robin
      ~battery:(battery ()) ~n:2 ~t_end:13000. (profile ())
  in
  let t_last, _ = tr.(Array.length tr - 1) in
  check_true "runs to the end or death" (t_last > 11000.)

let prop_lifetime_increases_with_cells =
  qcheck ~count:10 "more cells, longer life" (QCheck.int_range 1 4) (fun n ->
      let l k =
        match
          (Scheduler.run ~slot:100. ~policy:Policy.Round_robin
             ~battery:(battery ()) ~n:k (profile ()))
            .Scheduler.lifetime
        with
        | Some t -> t
        | None -> infinity
      in
      l (n + 1) > l n)

let suite =
  [
    case "pack create" test_pack_create;
    case "pack step serving" test_pack_step_serving;
    case "pack retire" test_pack_retire;
    case "pack best available" test_pack_best_available;
    case "policy choose" test_policy_choose;
    case "policy names" test_policy_names;
    case "single cell matches KiBaM" test_single_cell_matches_kibam;
    slow_case "scheduling gain" test_scheduling_gain;
    case "no gain without recovery" test_no_gain_without_recovery;
    slow_case "revive extends lifetime" test_revive_extends_lifetime;
    case "idle profile survives" test_survives_idle_profile;
    slow_case "intermittent load" test_intermittent_load;
    case "trace shape" test_trace_shape;
    case "compare policies" test_compare_policies;
    case "validation" test_validation;
    case "random policy deterministic" test_random_policy_deterministic;
    slow_case "trace with revive" test_trace_with_revive;
    prop_lifetime_increases_with_cells;
  ]
