open Batlife_experiments
open Helpers

(* The experiment harness is exercised end-to-end by the bench; here we
   verify the cheap invariants and the headline numbers it must
   reproduce from the paper. *)

let test_params () =
  check_float "capacity" 7200. Params.capacity_as;
  check_float "c" 0.625 Params.c_fraction;
  check_int "grid points"
    (Array.length (Params.onoff_times ()))
    ((20000 - 6000) / 250 + 1);
  let battery = Params.battery_two_well () in
  check_float "k" 4.5e-5 battery.Batlife_battery.Kibam.k

let test_table1_rows () =
  let rows = Table1.compute ~stochastic_runs:20 () in
  check_int "three rows" 3 (List.length rows);
  let continuous = List.hd rows in
  check_float ~eps:0.5 "continuous calibrated to 90 min" 90.
    continuous.Table1.kibam_min;
  check_close ~rel:0.01 "paper k continuous is 91" 91.1
    continuous.Table1.kibam_paper_k_min;
  let hz1 = List.nth rows 1 and hz02 = List.nth rows 2 in
  (* The paper's central finding: analytic KiBaM and deterministic
     modified KiBaM are frequency independent. *)
  check_close ~rel:1e-3 "KiBaM frequency independence"
    hz1.Table1.kibam_min hz02.Table1.kibam_min;
  check_close ~rel:1e-2 "modified KiBaM frequency independence"
    hz1.Table1.modified_min hz02.Table1.modified_min;
  (* The modified model is calibrated to 193 minutes at 1 Hz. *)
  check_close ~rel:1e-2 "modified at 1 Hz" 193. hz1.Table1.modified_min;
  (* Both pulsed lifetimes far exceed the continuous one (recovery). *)
  check_true "recovery effect"
    (hz1.Table1.kibam_min > 1.8 *. continuous.Table1.kibam_min)

let test_fig2_series () =
  match Fig2.compute () with
  | [ y1; y2 ] ->
      let y1s = Batlife_output.Series.ys y1 in
      let y2s = Batlife_output.Series.ys y2 in
      check_float "y1 starts at 4500" 4500. y1s.(0);
      check_float "y2 starts at 2700" 2700. y2s.(0);
      (* y2 is non-increasing throughout (bound well only drains when
         h2 > h1, which holds along this trajectory). *)
      let monotone = ref true in
      Array.iteri
        (fun i y -> if i > 0 && y > y2s.(i - 1) +. 1e-9 then monotone := false)
        y2s;
      check_true "y2 monotone" !monotone;
      (* y1 saw-tooths: it must both fall and rise somewhere. *)
      let rises = ref false and falls = ref false in
      Array.iteri
        (fun i y ->
          if i > 0 then begin
            if y > y1s.(i - 1) +. 1e-9 then rises := true;
            if y < y1s.(i - 1) -. 1e-9 then falls := true
          end)
        y1s;
      check_true "y1 falls" !falls;
      check_true "y1 rises during idle" !rises
  | _ -> Alcotest.fail "expected two series"

let test_runner_ids () =
  check_int "thirteen experiments" 13 (List.length Runner.experiment_ids);
  (match Runner.run_one "nonsense" with
  | Error msg -> check_true "helpful error" (String.length msg > 10)
  | Ok () -> Alcotest.fail "unknown id must fail")

let suite =
  [
    case "paper parameters" test_params;
    slow_case "table 1 shape" test_table1_rows;
    case "fig 2 series shape" test_fig2_series;
    case "runner ids" test_runner_ids;
  ]
