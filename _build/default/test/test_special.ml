open Batlife_numerics
open Helpers

let test_log_gamma_integers () =
  (* Gamma(n) = (n-1)! *)
  check_float ~eps:1e-10 "Gamma(1)" 0. (Special.log_gamma 1.);
  check_float ~eps:1e-10 "Gamma(2)" 0. (Special.log_gamma 2.);
  check_float ~eps:1e-9 "Gamma(5)" (log 24.) (Special.log_gamma 5.);
  check_close ~rel:1e-12 "Gamma(11)" (log 3628800.) (Special.log_gamma 11.)

let test_log_gamma_half () =
  (* Gamma(1/2) = sqrt(pi). *)
  check_float ~eps:1e-10 "Gamma(0.5)"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  (* Gamma(3/2) = sqrt(pi)/2 *)
  check_float ~eps:1e-10 "Gamma(1.5)"
    ((0.5 *. log Float.pi) -. log 2.)
    (Special.log_gamma 1.5)

let test_log_gamma_invalid () =
  check_raises_invalid "non-positive" (fun () -> Special.log_gamma 0.);
  check_raises_invalid "negative" (fun () -> Special.log_gamma (-1.))

let test_log_factorial () =
  check_float "0!" 0. (Special.log_factorial 0);
  check_float "1!" 0. (Special.log_factorial 1);
  check_close ~rel:1e-12 "10!" (log 3628800.) (Special.log_factorial 10);
  (* Table/Lanczos boundary consistency. *)
  check_close ~rel:1e-12 "300!"
    (Special.log_gamma 301.)
    (Special.log_factorial 300);
  check_raises_invalid "negative" (fun () ->
      ignore (Special.log_factorial (-1)))

let test_log_binomial () =
  check_float "n choose 0" 0. (Special.log_binomial 10 0);
  check_float "n choose n" 0. (Special.log_binomial 10 10);
  check_close ~rel:1e-12 "10 choose 3" (log 120.) (Special.log_binomial 10 3);
  check_raises_invalid "k > n" (fun () -> ignore (Special.log_binomial 3 4))

let test_poisson_pmf () =
  check_float ~eps:1e-12 "P(0; 2)" (exp (-2.)) (Special.poisson_pmf ~lambda:2. 0);
  check_float ~eps:1e-12 "P(3; 2)"
    (exp (-2.) *. 8. /. 6.)
    (Special.poisson_pmf ~lambda:2. 3);
  check_float "P(-1)" 0. (Special.poisson_pmf ~lambda:2. (-1));
  check_float "lambda 0, n 0" 1. (Special.poisson_pmf ~lambda:0. 0);
  check_float "lambda 0, n 1" 0. (Special.poisson_pmf ~lambda:0. 1);
  (* Large lambda stays finite and normalised over the bulk. *)
  let lambda = 50000. in
  let total = ref 0. in
  for n = 48000 to 52000 do
    total := !total +. Special.poisson_pmf ~lambda n
  done;
  check_float ~eps:1e-6 "large lambda bulk" 1. !total

let test_erf () =
  check_float ~eps:1e-7 "erf 0" 0. (Special.erf 0.);
  check_float ~eps:2e-7 "erf 1" 0.8427007929 (Special.erf 1.);
  check_float ~eps:2e-7 "erf -1" (-0.8427007929) (Special.erf (-1.));
  check_float ~eps:1e-6 "erf 3" 0.9999779095 (Special.erf 3.)

let test_normal () =
  check_float ~eps:1e-7 "Phi(0)" 0.5 (Special.normal_cdf 0.);
  check_float ~eps:1e-6 "Phi(1.96)" 0.9750021 (Special.normal_cdf 1.96);
  check_float ~eps:1e-8 "quantile 0.5" 0. (Special.normal_quantile 0.5);
  check_float ~eps:1e-6 "quantile 0.975" 1.959964 (Special.normal_quantile 0.975);
  check_raises_invalid "quantile 0" (fun () ->
      ignore (Special.normal_quantile 0.))

let prop_quantile_roundtrip =
  qcheck "normal_cdf (normal_quantile p) = p"
    (pos_float_arb 0.001 0.999)
    (fun p ->
      Float.abs (Special.normal_cdf (Special.normal_quantile p) -. p) < 1e-5)

let suite =
  [
    case "log_gamma at integers" test_log_gamma_integers;
    case "log_gamma at halves" test_log_gamma_half;
    case "log_gamma domain" test_log_gamma_invalid;
    case "log_factorial" test_log_factorial;
    case "log_binomial" test_log_binomial;
    case "poisson pmf" test_poisson_pmf;
    case "erf" test_erf;
    case "normal cdf/quantile" test_normal;
    prop_quantile_roundtrip;
  ]
