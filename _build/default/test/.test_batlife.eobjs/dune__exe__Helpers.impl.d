test/helpers.ml: Alcotest Float Gen QCheck QCheck_alcotest
