test/test_rakhmatov.ml: Alcotest Batlife_battery Helpers Load_profile QCheck Rakhmatov
