test/test_output.ml: Alcotest Array Ascii_plot Batlife_output Csv Filename Float Fun Helpers List Series String Sys Table
