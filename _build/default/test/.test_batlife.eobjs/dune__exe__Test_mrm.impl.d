test/test_mrm.ml: Alcotest Array Batlife_ctmc Batlife_mrm Erlangization Float Generator Helpers Moments Mrm Occupation
