test/test_roots.ml: Alcotest Batlife_numerics Float Helpers Roots
