test/test_batlife.mli:
