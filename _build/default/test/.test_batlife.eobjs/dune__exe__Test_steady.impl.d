test/test_steady.ml: Alcotest Array Batlife_ctmc Batlife_numerics Generator Helpers Printf Sparse Steady Transient Vector
