test/test_ode.ml: Alcotest Array Batlife_numerics Float Helpers Ode
