test/test_sparse.ml: Array Batlife_numerics Dense Gen Helpers List QCheck Sparse Vector
