test/test_workload.ml: Array Batlife_ctmc Batlife_workload Burst Generator Helpers Model Onoff Printf Simple
