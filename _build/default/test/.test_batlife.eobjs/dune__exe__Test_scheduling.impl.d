test/test_scheduling.ml: Alcotest Array Batlife_battery Batlife_scheduling Helpers Kibam List Load_profile Pack Policy QCheck Scheduler String
