test/test_experiments.ml: Alcotest Array Batlife_battery Batlife_experiments Batlife_output Fig2 Helpers List Params Runner String Table1
