test/test_trace.ml: Alcotest Array Batlife_battery Batlife_ctmc Batlife_workload Float Helpers Kibam List Load_profile Model Printf Simple String Trace
