test/test_reachability.ml: Array Batlife_battery Batlife_core Batlife_ctmc Batlife_workload Generator Helpers List Phase_type Printf Reachability
