test/test_phase_type.ml: Array Batlife_ctmc Generator Helpers List Phase_type Printf QCheck
