test/test_vector.ml: Array Batlife_numerics Helpers QCheck Vector
