test/test_kibam.ml: Alcotest Array Batlife_battery Batlife_numerics Float Helpers Kibam Load_profile Ode QCheck
