test/test_interp_quadrature.ml: Array Batlife_numerics Float Helpers Interp List QCheck Quadrature
