test/test_transient.ml: Alcotest Array Batlife_ctmc Batlife_numerics Dense Gen Generator Helpers List Printf QCheck Sparse Transient Vector
