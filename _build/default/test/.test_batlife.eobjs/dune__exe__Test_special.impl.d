test/test_special.ml: Batlife_numerics Float Helpers Special
