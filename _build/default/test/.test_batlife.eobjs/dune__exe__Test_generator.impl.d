test/test_generator.ml: Alcotest Array Batlife_ctmc Batlife_numerics Float Gen Generator Helpers List Printf QCheck Sparse
