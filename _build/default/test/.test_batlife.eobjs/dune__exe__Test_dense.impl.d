test/test_dense.ml: Alcotest Array Batlife_numerics Dense Float Gen Helpers QCheck
