test/test_battery_misc.ml: Alcotest Batlife_battery Fit Float Gen Helpers Ideal Kibam List Load_profile Modified_kibam Peukert QCheck Seq Units
