test/test_poisson.ml: Alcotest Batlife_numerics Float Helpers List Poisson Printf Special
