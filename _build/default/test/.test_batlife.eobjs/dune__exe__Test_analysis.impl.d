test/test_analysis.ml: Alcotest Analysis Array Batlife_battery Batlife_core Batlife_workload Discretized Helpers Kibam Kibamrm Lifetime List Onoff Simple
