open Batlife_numerics
open Helpers

let test_zero_rate () =
  let w = Poisson.weights 0. in
  check_int "left" 0 w.Poisson.left;
  check_int "right" 0 w.Poisson.right;
  check_float "mass" 1. (Poisson.total w);
  check_float "prob 0" 1. (Poisson.prob w 0);
  check_float "prob 1" 0. (Poisson.prob w 1)

let test_matches_direct_pmf () =
  List.iter
    (fun lambda ->
      let w = Poisson.weights ~accuracy:1e-14 lambda in
      for n = w.Poisson.left to w.Poisson.right do
        let direct = Special.poisson_pmf ~lambda n in
        if Float.abs (Poisson.prob w n -. direct) > 1e-12 then
          Alcotest.failf "lambda=%g n=%d: %g vs %g" lambda n
            (Poisson.prob w n) direct
      done)
    [ 0.1; 1.; 5.; 20. ]

let test_normalised () =
  List.iter
    (fun lambda ->
      let w = Poisson.weights lambda in
      check_float ~eps:1e-12
        (Printf.sprintf "total at %g" lambda)
        1. (Poisson.total w))
    [ 0.01; 1.; 10.; 1000.; 40000. ]

let test_window_covers_mode () =
  let lambda = 40000. in
  let w = Poisson.weights lambda in
  let mode = int_of_float lambda in
  check_true "left below mode" (w.Poisson.left <= mode);
  check_true "right above mode" (w.Poisson.right >= mode);
  (* The window should be a few standard deviations wide, not huge. *)
  let width = w.Poisson.right - w.Poisson.left in
  let sd = int_of_float (sqrt lambda) in
  check_true "width reasonable" (width > 6 * sd && width < 30 * sd)

let test_mass_outside_negligible () =
  let lambda = 500. in
  let w = Poisson.weights ~accuracy:1e-10 lambda in
  (* Mass below left plus above right is below the accuracy. *)
  let inside = ref 0. in
  for n = w.Poisson.left to w.Poisson.right do
    inside := !inside +. Special.poisson_pmf ~lambda n
  done;
  check_true "tail mass small" (1. -. !inside < 1e-10)

let test_fold_and_cdf () =
  let w = Poisson.weights 3. in
  let count = Poisson.fold w ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  check_int "fold visits all" (w.Poisson.right - w.Poisson.left + 1) count;
  let mean =
    Poisson.fold w ~init:0. ~f:(fun acc n p -> acc +. (float_of_int n *. p))
  in
  check_float ~eps:1e-9 "mean" 3. mean;
  check_float ~eps:1e-12 "cdf complement at right" 0.
    (Poisson.cdf_complement w w.Poisson.right);
  check_float ~eps:1e-12 "cdf complement below left" 1.
    (Poisson.cdf_complement w (w.Poisson.left - 1))

let test_negative_rate () =
  check_raises_invalid "negative" (fun () -> ignore (Poisson.weights (-1.)))

let prop_mean_matches_lambda =
  qcheck ~count:50 "truncated mean = lambda" (pos_float_arb 0.5 2000.)
    (fun lambda ->
      let w = Poisson.weights lambda in
      let mean =
        Poisson.fold w ~init:0. ~f:(fun acc n p ->
            acc +. (float_of_int n *. p))
      in
      Float.abs (mean -. lambda) < 1e-6 *. Float.max lambda 1.)

let suite =
  [
    case "zero rate" test_zero_rate;
    case "matches direct pmf" test_matches_direct_pmf;
    case "normalised" test_normalised;
    case "window covers mode" test_window_covers_mode;
    case "outside mass negligible" test_mass_outside_negligible;
    case "fold and cdf complement" test_fold_and_cdf;
    case "negative rate rejected" test_negative_rate;
    prop_mean_matches_lambda;
  ]
