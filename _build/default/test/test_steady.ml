open Batlife_numerics
open Batlife_ctmc
open Helpers

let test_two_state () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 2.); (1, 0, 6.) ] in
  let pi = Steady.gth g in
  check_float ~eps:1e-12 "pi0" 0.75 pi.(0);
  check_float ~eps:1e-12 "pi1" 0.25 pi.(1)

let birth_death ~n ~birth ~death =
  let rates = ref [] in
  for i = 0 to n - 2 do
    rates := (i, i + 1, birth) :: (i + 1, i, death) :: !rates
  done;
  Generator.of_rates ~n !rates

let test_birth_death_closed_form () =
  (* pi_i proportional to (birth/death)^i. *)
  let n = 6 and birth = 2. and death = 3. in
  let g = birth_death ~n ~birth ~death in
  let pi = Steady.gth g in
  let rho = birth /. death in
  let z = ref 0. in
  for i = 0 to n - 1 do
    z := !z +. (rho ** float_of_int i)
  done;
  for i = 0 to n - 1 do
    check_float ~eps:1e-12
      (Printf.sprintf "pi_%d" i)
      ((rho ** float_of_int i) /. !z)
      pi.(i)
  done

let test_balance_equations () =
  let g =
    Generator.of_rates ~n:4
      [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.); (3, 0, 4.); (1, 0, 0.5); (2, 0, 0.1) ]
  in
  let pi = Steady.gth g in
  (* pi Q = 0 *)
  let flow = Sparse.vecmat pi (Generator.matrix g) in
  Array.iter (fun f -> check_float ~eps:1e-12 "balance" 0. f) flow;
  check_float ~eps:1e-12 "mass" 1. (Vector.sum pi)

let test_power_iteration_agrees () =
  let g =
    Generator.of_rates ~n:5
      [ (0, 1, 1.); (1, 2, 1.5); (2, 3, 0.5); (3, 4, 2.); (4, 0, 1.); (2, 0, 1.) ]
  in
  let gth = Steady.gth g in
  let power = Steady.power_iteration g in
  check_true "agree" (Vector.approx_equal ~tol:1e-8 gth power)

let test_reducible_rejected () =
  (* State 1 is absorbing: state 0 cannot be reached from below. *)
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  match Steady.gth g with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "reducible chain should fail"

let test_expected_reward () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  check_float ~eps:1e-12 "mean reward" 5.
    (Steady.expected_reward g ~rewards:[| 0.; 10. |])

let test_transient_limit_matches_steady () =
  let g =
    Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 2.); (2, 0, 1.5); (1, 0, 1.) ]
  in
  let pi = Steady.gth g in
  let late = Transient.solve g ~alpha:[| 1.; 0.; 0. |] ~t:200. in
  check_true "transient converges to steady"
    (Vector.approx_equal ~tol:1e-9 pi late)

let suite =
  [
    case "two-state" test_two_state;
    case "birth-death closed form" test_birth_death_closed_form;
    case "global balance" test_balance_equations;
    case "power iteration agrees with GTH" test_power_iteration_agrees;
    case "reducible chain rejected" test_reducible_rejected;
    case "expected reward" test_expected_reward;
    case "transient limit is steady state" test_transient_limit_matches_steady;
  ]
