open Batlife_ctmc
open Helpers

let test_exponential () =
  let d = Phase_type.exponential ~rate:2. in
  check_float ~eps:1e-10 "cdf" (1. -. exp (-2.)) (Phase_type.cdf d 1.);
  check_float ~eps:1e-10 "mean" 0.5 (Phase_type.mean d);
  check_float ~eps:1e-10 "variance" 0.25 (Phase_type.variance d);
  check_float "cdf at 0" 0. (Phase_type.cdf d 0.);
  check_float "negative t" 0. (Phase_type.cdf d (-1.))

let test_erlang_cdf_closed_form () =
  let k = 4 and rate = 3. in
  let d = Phase_type.erlang ~k ~rate in
  List.iter
    (fun t ->
      check_float ~eps:1e-10
        (Printf.sprintf "t=%g" t)
        (Phase_type.erlang_cdf ~k ~rate t)
        (Phase_type.cdf d t))
    [ 0.1; 0.5; 1.; 2.; 5. ]

let test_erlang_moments () =
  let d = Phase_type.erlang ~k:5 ~rate:2. in
  check_float ~eps:1e-10 "mean" 2.5 (Phase_type.mean d);
  check_float ~eps:1e-10 "variance" 1.25 (Phase_type.variance d);
  check_float ~eps:1e-9 "third moment"
    (5. *. 6. *. 7. /. 8.)
    (Phase_type.moment d 3)

let test_hypoexponential () =
  let d = Phase_type.hypoexponential ~rates:[| 1.; 2.; 4. |] in
  check_float ~eps:1e-10 "mean is sum of means" 1.75 (Phase_type.mean d);
  check_float ~eps:1e-10 "variance is sum of variances"
    (1. +. 0.25 +. 0.0625)
    (Phase_type.variance d)

let test_cdf_many () =
  let d = Phase_type.erlang ~k:3 ~rate:1. in
  let times = [| 0.5; 1.; 2.; 4.; 8. |] in
  let batched = Phase_type.cdf_many d times in
  Array.iteri
    (fun i t ->
      check_float ~eps:1e-10
        (Printf.sprintf "batched t=%g" t)
        (Phase_type.cdf d t) batched.(i))
    times

let test_of_absorbing_ctmc () =
  (* 0 -> 1 -> 2 (absorbing) with rates 2 and 3: hypoexponential. *)
  let g = Generator.of_rates ~n:3 [ (0, 1, 2.); (1, 2, 3.) ] in
  let d = Phase_type.of_absorbing_ctmc g ~alpha:[| 1.; 0.; 0. |] in
  check_int "phases" 2 (Phase_type.n_phases d);
  let reference = Phase_type.hypoexponential ~rates:[| 2.; 3. |] in
  check_float ~eps:1e-10 "mean" (Phase_type.mean reference) (Phase_type.mean d);
  check_float ~eps:1e-10 "cdf"
    (Phase_type.cdf reference 0.7)
    (Phase_type.cdf d 0.7)

let test_of_absorbing_requires_absorbing () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  check_raises_invalid "no absorbing state" (fun () ->
      ignore (Phase_type.of_absorbing_ctmc g ~alpha:[| 1.; 0. |]))

let test_defective_initial () =
  (* 30% of the mass starts absorbed: atom at 0. *)
  let d =
    Phase_type.create ~alpha:[| 0.7 |] ~sub_generator:[| [| -1. |] |]
  in
  check_float ~eps:1e-10 "atom at zero" 0.3 (Phase_type.cdf d 0.);
  check_float ~eps:1e-10 "eventually 1" 1. (Phase_type.cdf d 50.)

let test_validation () =
  check_raises_invalid "bad rate" (fun () ->
      ignore (Phase_type.erlang ~k:2 ~rate:0.));
  check_raises_invalid "bad k" (fun () ->
      ignore (Phase_type.erlang ~k:0 ~rate:1.));
  check_raises_invalid "positive row sum" (fun () ->
      ignore (Phase_type.create ~alpha:[| 1. |] ~sub_generator:[| [| 1. |] |]));
  check_raises_invalid "mass above one" (fun () ->
      ignore (Phase_type.create ~alpha:[| 1.5 |] ~sub_generator:[| [| -1. |] |]))

let test_moment_validation () =
  let d = Phase_type.exponential ~rate:1. in
  check_raises_invalid "m = 0" (fun () -> ignore (Phase_type.moment d 0))

let prop_erlang_cdf_monotone =
  qcheck ~count:50 "erlang cdf monotone in t"
    QCheck.(pair (int_range 1 6) (pos_float_arb 0.5 4.))
    (fun (k, rate) ->
      let d = Phase_type.erlang ~k ~rate in
      let prev = ref 0. in
      List.for_all
        (fun t ->
          let c = Phase_type.cdf d t in
          let ok = c >= !prev -. 1e-12 && c <= 1. +. 1e-12 in
          prev := c;
          ok)
        [ 0.2; 0.5; 1.; 2.; 4. ])

let suite =
  [
    case "exponential" test_exponential;
    case "erlang cdf vs closed form" test_erlang_cdf_closed_form;
    case "erlang moments" test_erlang_moments;
    case "hypoexponential" test_hypoexponential;
    case "batched cdf" test_cdf_many;
    case "of_absorbing_ctmc" test_of_absorbing_ctmc;
    case "absorbing state required" test_of_absorbing_requires_absorbing;
    case "defective initial distribution" test_defective_initial;
    case "validation" test_validation;
    case "moment validation" test_moment_validation;
    prop_erlang_cdf_monotone;
  ]
