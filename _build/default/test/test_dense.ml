open Batlife_numerics
open Helpers

let mat rows = Dense.of_arrays rows

let test_identity_matmul () =
  let a = mat [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let i = Dense.identity 2 in
  check_true "A I = A" (Dense.approx_equal (Dense.matmul a i) a);
  check_true "I A = A" (Dense.approx_equal (Dense.matmul i a) a)

let test_matmul_known () =
  let a = mat [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = mat [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let expected = mat [| [| 19.; 22. |]; [| 43.; 50. |] |] in
  check_true "2x2 product" (Dense.approx_equal (Dense.matmul a b) expected)

let test_matvec_vecmat () =
  let a = mat [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let y = Dense.matvec a [| 1.; 1. |] in
  check_float "matvec 0" 3. y.(0);
  check_float "matvec 1" 7. y.(1);
  let z = Dense.vecmat [| 1.; 1. |] a in
  check_float "vecmat 0" 4. z.(0);
  check_float "vecmat 1" 6. z.(1)

let test_transpose () =
  let a = mat [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Dense.transpose a in
  check_int "rows" 3 (Dense.rows t);
  check_float "entry" 6. (Dense.get t 2 1)

let test_lu_solve () =
  let a = mat [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Dense.lu_solve a [| 5.; 10. |] in
  check_float ~eps:1e-12 "x0" 1. x.(0);
  check_float ~eps:1e-12 "x1" 3. x.(1)

let test_lu_needs_pivoting () =
  (* Zero pivot at (0,0) requires row exchange. *)
  let a = mat [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Dense.lu_solve a [| 2.; 3. |] in
  check_float "x0" 3. x.(0);
  check_float "x1" 2. x.(1)

let test_singular () =
  let a = mat [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Dense.lu_solve a [| 1.; 2. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "singular system should fail"

let test_inverse () =
  let a = mat [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let ai = Dense.inverse a in
  check_true "A A^-1 = I"
    (Dense.approx_equal ~tol:1e-12 (Dense.matmul a ai) (Dense.identity 2))

let test_expm_diagonal () =
  let a = mat [| [| 1.; 0. |]; [| 0.; -2. |] |] in
  let e = Dense.expm a in
  check_float ~eps:1e-12 "exp 1" (exp 1.) (Dense.get e 0 0);
  check_float ~eps:1e-12 "exp -2" (exp (-2.)) (Dense.get e 1 1);
  check_float ~eps:1e-13 "off diag" 0. (Dense.get e 0 1)

let test_expm_nilpotent () =
  (* exp([[0,1],[0,0]]) = [[1,1],[0,1]]. *)
  let a = mat [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  let e = Dense.expm a in
  check_true "nilpotent exp"
    (Dense.approx_equal ~tol:1e-13 e (mat [| [| 1.; 1. |]; [| 0.; 1. |] |]))

let test_expm_rotation () =
  (* exp(theta [[0,-1],[1,0]]) is a rotation matrix. *)
  let theta = 1.2 in
  let a = mat [| [| 0.; -.theta |]; [| theta; 0. |] |] in
  let e = Dense.expm a in
  check_float ~eps:1e-11 "cos" (cos theta) (Dense.get e 0 0);
  check_float ~eps:1e-11 "sin" (sin theta) (Dense.get e 1 0)

let test_expm_large_norm () =
  (* Scaling and squaring must handle norms well above 1. *)
  let a = mat [| [| -30.; 30. |]; [| 10.; -10. |] |] in
  let e = Dense.expm a in
  (* exp of a generator-like matrix: rows of exp(Qt) sum to 1. *)
  check_float ~eps:1e-9 "row 0 mass" 1. (Dense.get e 0 0 +. Dense.get e 0 1);
  check_float ~eps:1e-9 "row 1 mass" 1. (Dense.get e 1 0 +. Dense.get e 1 1)

let prop_solve_residual =
  qcheck ~count:100 "lu_solve residual is tiny"
    QCheck.(
      pair (float_array_arb 9) (array_of_size (Gen.return 3) (float_range 1. 5.)))
    (fun (entries, b) ->
      (* Diagonally dominant system: always solvable. *)
      let a =
        Dense.init ~rows:3 ~cols:3 (fun i j ->
            let v = entries.((3 * i) + j) /. 100. in
            if i = j then 10. +. Float.abs v else v)
      in
      let x = Dense.lu_solve a b in
      let r = Dense.matvec a x in
      Array.for_all2 (fun ri bi -> Float.abs (ri -. bi) < 1e-9) r b)

let prop_expm_additivity =
  qcheck ~count:50 "expm(A) expm(A) = expm(2A)" (float_array_arb 4)
    (fun entries ->
      let a =
        Dense.init ~rows:2 ~cols:2 (fun i j -> entries.((2 * i) + j) /. 50.)
      in
      let e1 = Dense.expm a in
      let e2 = Dense.expm (Dense.scale 2. a) in
      Dense.approx_equal ~tol:1e-10 (Dense.matmul e1 e1) e2)

let suite =
  [
    case "identity matmul" test_identity_matmul;
    case "matmul known product" test_matmul_known;
    case "matvec and vecmat" test_matvec_vecmat;
    case "transpose" test_transpose;
    case "lu solve" test_lu_solve;
    case "lu with pivoting" test_lu_needs_pivoting;
    case "singular detection" test_singular;
    case "inverse" test_inverse;
    case "expm diagonal" test_expm_diagonal;
    case "expm nilpotent" test_expm_nilpotent;
    case "expm rotation" test_expm_rotation;
    case "expm large norm" test_expm_large_norm;
    prop_solve_residual;
    prop_expm_additivity;
  ]
