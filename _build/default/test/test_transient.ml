open Batlife_numerics
open Batlife_ctmc
open Helpers

(* 2-state chain 0 <-> 1 with rates a, b: closed form
   pi_0(t) = b/(a+b) + (pi_0(0) - b/(a+b)) e^{-(a+b)t}. *)
let two_state_closed_form ~a ~b ~p0 t =
  let s = a +. b in
  (b /. s) +. ((p0 -. (b /. s)) *. exp (-.s *. t))

let test_two_state_closed_form () =
  let a = 2. and b = 0.5 in
  let g = Generator.of_rates ~n:2 [ (0, 1, a); (1, 0, b) ] in
  List.iter
    (fun t ->
      let pi = Transient.solve g ~alpha:[| 1.; 0. |] ~t in
      check_float ~eps:1e-10
        (Printf.sprintf "pi_0(%g)" t)
        (two_state_closed_form ~a ~b ~p0:1. t)
        pi.(0);
      check_float ~eps:1e-12 "mass" 1. (Vector.sum pi))
    [ 0.; 0.1; 1.; 5.; 50. ]

let test_t_zero () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.) ] in
  let pi = Transient.solve g ~alpha:[| 0.; 1.; 0. |] ~t:0. in
  check_float "stays put" 1. pi.(1)

let random_generator entries =
  let rates =
    List.filter_map
      (fun (i, j, r) -> if i <> j then Some (i, j, r) else None)
      entries
  in
  Generator.of_rates ~n:4 rates

let prop_matches_expm =
  qcheck ~count:100 "uniformisation matches dense matrix exponential"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 2 12)
           (triple (int_range 0 3) (int_range 0 3) (float_range 0.05 4.)))
        (pos_float_arb 0.01 3.))
    (fun (entries, t) ->
      let g = random_generator entries in
      let expm_qt =
        Dense.expm (Dense.scale t (Sparse.to_dense (Generator.matrix g)))
      in
      let alpha = [| 0.25; 0.25; 0.25; 0.25 |] in
      let via_expm = Dense.vecmat alpha expm_qt in
      let via_unif = Transient.solve ~accuracy:1e-14 g ~alpha ~t in
      Vector.approx_equal ~tol:1e-9 via_expm via_unif)

let test_measure_sweep_matches_solve () =
  let g =
    Generator.of_rates ~n:3 [ (0, 1, 1.5); (1, 2, 0.7); (2, 0, 0.2) ]
  in
  let alpha = [| 1.; 0.; 0. |] in
  let times = [| 0.3; 1.; 2.5; 7. |] in
  let measure pi = pi.(2) in
  let results, stats = Transient.measure_sweep g ~alpha ~times ~measure in
  check_true "iterations positive" (stats.Transient.iterations > 0);
  Array.iteri
    (fun i t ->
      let pi = Transient.solve g ~alpha ~t in
      check_float ~eps:1e-10 (Printf.sprintf "t=%g" t) pi.(2) results.(i))
    times

let test_measure_sweep_unsorted_times () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  let alpha = [| 1.; 0. |] in
  let results, _ =
    Transient.measure_sweep g ~alpha ~times:[| 5.; 0.5 |]
      ~measure:(fun pi -> pi.(1))
  in
  check_true "monotone measure" (results.(0) > results.(1))

let test_convergence_detection () =
  (* An absorbing chain: after absorption the vector is stationary and
     the sweep should stop early. *)
  let g = Generator.of_rates ~n:2 [ (0, 1, 10.) ] in
  let alpha = [| 1.; 0. |] in
  let _, stats =
    Transient.measure_sweep g ~alpha ~times:[| 1000. |]
      ~measure:(fun pi -> pi.(1))
  in
  match stats.Transient.converged_at with
  | Some at -> check_true "stopped early" (at < 2000)
  | None -> Alcotest.fail "expected early convergence"

let test_distribution_sweep () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 2.); (1, 0, 1.) ] in
  let alpha = [| 1.; 0. |] in
  let times = [| 0.5; 2. |] in
  let dists, _ = Transient.distribution_sweep g ~alpha ~times in
  Array.iteri
    (fun i t ->
      let direct = Transient.solve g ~alpha ~t in
      check_true
        (Printf.sprintf "dist at %g" t)
        (Vector.approx_equal ~tol:1e-10 direct dists.(i)))
    times

let test_absorbing_mass_monotone () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 2.) ] in
  let alpha = [| 1.; 0.; 0. |] in
  let times = Array.init 20 (fun i -> 0.25 *. float_of_int (i + 1)) in
  let results, _ =
    Transient.measure_sweep g ~alpha ~times ~measure:(fun pi -> pi.(2))
  in
  for i = 1 to Array.length results - 1 do
    check_true "monotone" (results.(i) >= results.(i - 1) -. 1e-12)
  done

let test_validation () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  check_raises_invalid "alpha length" (fun () ->
      ignore (Transient.solve g ~alpha:[| 1. |] ~t:1.));
  check_raises_invalid "negative time" (fun () ->
      ignore (Transient.solve g ~alpha:[| 1.; 0. |] ~t:(-1.)))

let test_expected_hitting_mass () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  let m =
    Transient.expected_hitting_mass g ~alpha:[| 1.; 0. |] ~states:[ 1 ] ~t:3.
  in
  check_float ~eps:1e-10 "absorbed mass" (1. -. exp (-3.)) m

let suite =
  [
    case "two-state closed form" test_two_state_closed_form;
    case "t = 0" test_t_zero;
    prop_matches_expm;
    case "measure sweep matches solve" test_measure_sweep_matches_solve;
    case "measure sweep with unsorted times" test_measure_sweep_unsorted_times;
    case "convergence detection" test_convergence_detection;
    case "distribution sweep" test_distribution_sweep;
    case "absorbing mass monotone" test_absorbing_mass_monotone;
    case "validation" test_validation;
    case "expected hitting mass" test_expected_hitting_mass;
  ]
