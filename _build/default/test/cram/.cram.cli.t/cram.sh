  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --load 0.96
  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --square-wave 1
  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --square-wave 0.2
  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 2>/dev/null
  $ batlife experiment nonsense 2>&1 | head -1
  $ cat > trace.csv <<END
  > # time,current
  > 0,0.96
  > 100,0
  > 200,0.96
  > 300,0
  > 400,0.96
  > 500,0
  > END
  $ batlife trace --csv trace.csv --capacity 7200 -c 0.625 -k 4.5e-5 \
  >   --horizon 20000 --points 4 2>/dev/null
