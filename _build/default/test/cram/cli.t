The analytic KiBaM under the paper's Table 1 loads.  Continuous
0.96 A with the paper's calibrated k:

  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --load 0.96
  lifetime: 5468.59 time units (91.14 minutes if seconds)
  average load: 0.96
  ideal-battery lifetime at average load: 7500

The 1 Hz square wave lasts much longer (recovery effect), and the
0.2 Hz one exactly as long (frequency independence):

  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --square-wave 1
  lifetime: 12176.3 time units (202.94 minutes if seconds)
  average load: 0.48
  ideal-battery lifetime at average load: 15000

  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --square-wave 0.2
  lifetime: 12175.9 time units (202.93 minutes if seconds)
  average load: 0.48
  ideal-battery lifetime at average load: 15000

A tiny lifetime-distribution query (stderr carries the diagnostics,
stdout the curve):

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 2>/dev/null
  6	0.031102
  12	0.454096
  18	0.895086
  24	0.992080
  30	0.999700

Unknown experiments are rejected with the list of valid ids:

  $ batlife experiment nonsense 2>&1 | head -1
  batlife: unknown experiment "nonsense"; valid ids: table1, fig2, fig7, fig8, fig9, fig10, fig11, ext_erlang_k, ext_empty_recovery, ext_frequency_sweep, ext_richardson, ext_charge_profile, ext_sensitivity

Trace-driven workflow: replay a measured CSV and fit a model from it:

  $ cat > trace.csv <<END
  > # time,current
  > 0,0.96
  > 100,0
  > 200,0.96
  > 300,0
  > 400,0.96
  > 500,0
  > END
  $ batlife trace --csv trace.csv --capacity 7200 -c 0.625 -k 4.5e-5 \
  >   --horizon 20000 --points 4 2>/dev/null
  trace replay: battery survives the recorded trace
  estimated 2-level workload model:
    level 0: current 0 (occupancy 0.400)
    level 1: current 0.96 (occupancy 0.600)
  5000	0.000000
  10000	0.590482
  15000	0.999965
  20000	1.000000
