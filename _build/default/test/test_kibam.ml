open Batlife_numerics
open Batlife_battery
open Helpers

let paper_params () = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5

let test_params_validation () =
  check_raises_invalid "capacity" (fun () ->
      ignore (Kibam.params ~capacity:0. ~c:0.5 ~k:1.));
  check_raises_invalid "c too big" (fun () ->
      ignore (Kibam.params ~capacity:1. ~c:1.5 ~k:1.));
  check_raises_invalid "c zero" (fun () ->
      ignore (Kibam.params ~capacity:1. ~c:0. ~k:1.));
  check_raises_invalid "negative k" (fun () ->
      ignore (Kibam.params ~capacity:1. ~c:0.5 ~k:(-1.)))

let test_initial_state () =
  let p = paper_params () in
  let s = Kibam.initial p in
  check_float "available" 4500. s.Kibam.available;
  check_float "bound" 2700. s.Kibam.bound;
  let h1, h2 = Kibam.heights p s in
  check_float ~eps:1e-9 "heights equal when full" h1 h2;
  check_float ~eps:1e-9 "height is capacity" 7200. h1

let test_state_validation () =
  let p = paper_params () in
  check_raises_invalid "negative" (fun () ->
      ignore (Kibam.state p ~available:(-1.) ~bound:0.));
  check_raises_invalid "over capacity" (fun () ->
      ignore (Kibam.state p ~available:5000. ~bound:3000.));
  let p1 = Kibam.params ~capacity:100. ~c:1. ~k:0. in
  check_raises_invalid "bound with c=1" (fun () ->
      ignore (Kibam.state p1 ~available:50. ~bound:10.))

let test_step_degenerate () =
  let p = Kibam.params ~capacity:100. ~c:1. ~k:0. in
  let s = Kibam.step p ~load:2. ~dt:10. (Kibam.initial p) in
  check_float "linear drain" 80. s.Kibam.available;
  check_float "no bound charge" 0. s.Kibam.bound

let test_step_conserves_charge_when_idle () =
  let p = paper_params () in
  let s0 = Kibam.state p ~available:2000. ~bound:2700. in
  let s1 = Kibam.step p ~load:0. ~dt:5000. s0 in
  check_float ~eps:1e-8 "total conserved" 4700.
    (s1.Kibam.available +. s1.Kibam.bound);
  check_true "available recovered" (s1.Kibam.available > s0.Kibam.available)

let test_idle_equilibrium () =
  (* After a long idle period the heights equalise: y1 -> c (y1+y2). *)
  let p = paper_params () in
  let s0 = Kibam.state p ~available:1000. ~bound:2000. in
  let s = Kibam.step p ~load:0. ~dt:1e7 s0 in
  check_float ~eps:1e-6 "y1 equilibrium" (0.625 *. 3000.) s.Kibam.available;
  check_float ~eps:1e-6 "y2 equilibrium" (0.375 *. 3000.) s.Kibam.bound

let test_step_matches_rk4 () =
  let p = paper_params () in
  let load = 0.96 in
  let f _t y =
    let dy1, dy2 =
      Kibam.derivatives p ~load { Kibam.available = y.(0); bound = y.(1) }
    in
    [| dy1; dy2 |]
  in
  let s0 = Kibam.initial p in
  let numeric =
    Ode.integrate ~step:1. f ~t0:0. ~t1:1000.
      ~y0:[| s0.Kibam.available; s0.Kibam.bound |]
  in
  let analytic = Kibam.step p ~load ~dt:1000. s0 in
  check_float ~eps:1e-6 "y1 matches" numeric.(0) analytic.Kibam.available;
  check_float ~eps:1e-6 "y2 matches" numeric.(1) analytic.Kibam.bound

let test_step_additivity () =
  let p = paper_params () in
  let s0 = Kibam.initial p in
  let one = Kibam.step p ~load:0.5 ~dt:800. s0 in
  let two =
    Kibam.step p ~load:0.5 ~dt:500. (Kibam.step p ~load:0.5 ~dt:300. s0)
  in
  check_float ~eps:1e-9 "y1 additive" one.Kibam.available two.Kibam.available;
  check_float ~eps:1e-9 "y2 additive" one.Kibam.bound two.Kibam.bound

let test_empty_within () =
  let p = Kibam.params ~capacity:100. ~c:1. ~k:0. in
  (match Kibam.empty_within p ~load:10. ~dt:20. (Kibam.initial p) with
  | Some t -> check_float ~eps:1e-12 "linear empty time" 10. t
  | None -> Alcotest.fail "expected depletion");
  (match Kibam.empty_within p ~load:10. ~dt:5. (Kibam.initial p) with
  | None -> ()
  | Some _ -> Alcotest.fail "should survive 5 time units");
  match Kibam.empty_within p ~load:0. ~dt:1e6 (Kibam.initial p) with
  | None -> ()
  | Some _ -> Alcotest.fail "no load, no depletion"

let test_empty_within_two_well () =
  let p = paper_params () in
  let s = Kibam.initial p in
  match Kibam.empty_within p ~load:0.96 ~dt:infinity s with
  | Some t ->
      (* The located instant must indeed have (numerically) zero y1. *)
      let at = Kibam.step p ~load:0.96 ~dt:t s in
      check_float ~eps:1e-5 "y1 at crossing" 0. at.Kibam.available;
      (* Between c*C/I and C/I. *)
      check_true "lower bound" (t > 4500. /. 0.96);
      check_true "upper bound" (t < 7200. /. 0.96)
  | None -> Alcotest.fail "constant load must deplete"

let test_lifetime_constant_monotone_in_load () =
  let p = paper_params () in
  let l1 = Kibam.lifetime_constant p ~load:0.5 in
  let l2 = Kibam.lifetime_constant p ~load:1. in
  let l3 = Kibam.lifetime_constant p ~load:2. in
  check_true "monotone" (l1 > l2 && l2 > l3)

let test_lifetime_constant_monotone_in_k () =
  let lifetime k =
    Kibam.lifetime_constant
      (Kibam.params ~capacity:7200. ~c:0.625 ~k)
      ~load:0.96
  in
  check_true "more diffusion, longer life"
    (lifetime 1e-5 < lifetime 1e-4 && lifetime 1e-4 < lifetime 1e-3)

let test_delivered_charge_limits () =
  let p = paper_params () in
  check_float ~eps:10. "huge load delivers available well" 4500.
    (Kibam.delivered_charge p ~load:1000.);
  check_float ~eps:10. "tiny load delivers everything" 7200.
    (Kibam.delivered_charge p ~load:0.001)

let test_square_wave_frequency_independence () =
  (* Table 1's KiBaM finding: lifetimes at 1 Hz and 0.2 Hz coincide. *)
  let p = paper_params () in
  let lifetime f =
    match
      Kibam.lifetime p (Load_profile.square_wave ~frequency:f ~on_load:0.96)
    with
    | Some t -> t
    | None -> Alcotest.fail "must deplete"
  in
  check_close ~rel:1e-3 "1 Hz vs 0.2 Hz" (lifetime 1.) (lifetime 0.2);
  (* And pulsing beats the continuous load. *)
  check_true "recovery helps"
    (lifetime 1. > Kibam.lifetime_constant p ~load:0.96)

let test_lifetime_none_when_too_short () =
  let p = paper_params () in
  check_true "max_time cap"
    (Kibam.lifetime ~max_time:100. p (Load_profile.constant 0.96) = None)

let test_finite_profile_survival () =
  let p = Kibam.params ~capacity:100. ~c:1. ~k:0. in
  let profile = Load_profile.finite [ { Load_profile.duration = 5.; load = 1. } ] in
  check_true "survives finite profile"
    (Kibam.lifetime ~max_time:1e4 p profile = None)

let test_trace_structure () =
  let p = paper_params () in
  let profile = Load_profile.square_wave ~frequency:0.001 ~on_load:0.96 in
  let trace = Kibam.trace p profile ~t_end:2000. ~sample_step:100. in
  let t0, y1_0, y2_0 = trace.(0) in
  check_float "starts at 0" 0. t0;
  check_float "y1 start" 4500. y1_0;
  check_float "y2 start" 2700. y2_0;
  (* Samples are ordered in time and stay in the battery's range. *)
  let prev = ref (-1.) in
  Array.iter
    (fun (t, y1, y2) ->
      check_true "time increases" (t > !prev);
      prev := t;
      check_true "y1 in range" (y1 >= -1e-9 && y1 <= 4500.000001);
      check_true "y2 in range" (y2 >= -1e-9 && y2 <= 2700.000001))
    trace

let test_trace_stops_at_empty () =
  let p = Kibam.params ~capacity:10. ~c:1. ~k:0. in
  let trace =
    Kibam.trace p (Load_profile.constant 1.) ~t_end:100. ~sample_step:1.
  in
  let t_last, y1_last, _ = trace.(Array.length trace - 1) in
  check_float ~eps:1e-9 "empty at 10" 10. t_last;
  check_float "y1 zero" 0. y1_last

let kibam_arb =
  QCheck.(
    quad (pos_float_arb 100. 10000.) (pos_float_arb 0.2 0.95)
      (pos_float_arb 1e-6 1e-3) (pos_float_arb 0.1 2.))

let prop_analytic_satisfies_ode =
  qcheck ~count:100 "closed form satisfies the KiBaM ODE" kibam_arb
    (fun (capacity, c, k, load) ->
      let p = Kibam.params ~capacity ~c ~k in
      let s0 = Kibam.initial p in
      (* Compare d/dt of the closed form against the vector field. *)
      let dt = 1e-3 in
      let t = 50. in
      let s_minus = Kibam.step p ~load ~dt:(t -. dt) s0 in
      let s_plus = Kibam.step p ~load ~dt:(t +. dt) s0 in
      let s_mid = Kibam.step p ~load ~dt:t s0 in
      let dy1 = (s_plus.Kibam.available -. s_minus.Kibam.available) /. (2. *. dt)
      and dy2 = (s_plus.Kibam.bound -. s_minus.Kibam.bound) /. (2. *. dt) in
      let f1, f2 = Kibam.derivatives p ~load s_mid in
      Float.abs (dy1 -. f1) < 1e-5 *. Float.max 1. (Float.abs f1)
      && Float.abs (dy2 -. f2) < 1e-5 *. Float.max 1. (Float.abs f2))

let prop_total_charge_never_grows =
  qcheck ~count:100 "discharge never creates charge" kibam_arb
    (fun (capacity, c, k, load) ->
      let p = Kibam.params ~capacity ~c ~k in
      let s0 = Kibam.initial p in
      let s = Kibam.step p ~load ~dt:100. s0 in
      s.Kibam.available +. s.Kibam.bound
      <= s0.Kibam.available +. s0.Kibam.bound +. 1e-9)

let prop_lifetime_between_bounds =
  qcheck ~count:50 "lifetime between cC/I and C/I" kibam_arb
    (fun (capacity, c, k, load) ->
      let p = Kibam.params ~capacity ~c ~k in
      let l = Kibam.lifetime_constant p ~load in
      l >= (c *. capacity /. load) -. 1e-6
      && l <= (capacity /. load) +. 1e-6)

let suite =
  [
    case "params validation" test_params_validation;
    case "initial state" test_initial_state;
    case "state validation" test_state_validation;
    case "degenerate step" test_step_degenerate;
    case "idle conserves charge" test_step_conserves_charge_when_idle;
    case "idle equilibrium" test_idle_equilibrium;
    case "closed form matches RK4" test_step_matches_rk4;
    case "step additivity" test_step_additivity;
    case "empty_within (linear)" test_empty_within;
    case "empty_within (two-well)" test_empty_within_two_well;
    case "lifetime monotone in load" test_lifetime_constant_monotone_in_load;
    case "lifetime monotone in k" test_lifetime_constant_monotone_in_k;
    case "delivered charge limits" test_delivered_charge_limits;
    case "square-wave frequency independence"
      test_square_wave_frequency_independence;
    case "max_time cap" test_lifetime_none_when_too_short;
    case "finite profile survival" test_finite_profile_survival;
    case "trace structure" test_trace_structure;
    case "trace stops at empty" test_trace_stops_at_empty;
    prop_analytic_satisfies_ode;
    prop_total_charge_never_grows;
    prop_lifetime_between_bounds;
  ]
