open Batlife_numerics
open Helpers

(* dy/dt = -y, y(0) = 1 -> y(t) = e^{-t}. *)
let decay _t y = [| -.y.(0) |]

(* Harmonic oscillator: y'' = -y as a 2d system. *)
let oscillator _t y = [| y.(1); -.y.(0) |]

let test_euler_first_order () =
  (* One Euler step has O(h^2) local error. *)
  let y = Ode.euler_step decay ~t:0. ~dt:0.01 ~y:[| 1. |] in
  check_float ~eps:1e-4 "euler step" (exp (-0.01)) y.(0)

let test_rk4_accuracy () =
  let y = Ode.integrate ~step:0.01 decay ~t0:0. ~t1:1. ~y0:[| 1. |] in
  check_float ~eps:1e-10 "rk4 decay" (exp (-1.)) y.(0)

let test_rk4_convergence_order () =
  (* Error should shrink ~16x when the step halves. *)
  let error step =
    let y = Ode.integrate ~step decay ~t0:0. ~t1:1. ~y0:[| 1. |] in
    Float.abs (y.(0) -. exp (-1.))
  in
  let e1 = error 0.1 and e2 = error 0.05 in
  check_true "4th order" (e1 /. e2 > 10. && e1 /. e2 < 25.)

let test_oscillator_energy () =
  let y = Ode.integrate ~step:0.001 oscillator ~t0:0. ~t1:10. ~y0:[| 1.; 0. |] in
  check_float ~eps:1e-8 "position" (cos 10.) y.(0);
  check_float ~eps:1e-8 "velocity" (-.sin 10.) y.(1);
  let energy = (y.(0) *. y.(0)) +. (y.(1) *. y.(1)) in
  check_float ~eps:1e-9 "energy conserved" 1. energy

let test_trace () =
  let tr = Ode.trace ~step:0.25 decay ~t0:0. ~t1:1. ~y0:[| 1. |] in
  check_int "points" 5 (Array.length tr);
  let t_last, y_last = tr.(4) in
  check_float ~eps:1e-12 "final time" 1. t_last;
  (* Step 0.25 is coarse: RK4 local error ~ 1e-5 here. *)
  check_float ~eps:1e-4 "final value" (exp (-1.)) y_last.(0)

let test_rkf45 () =
  let r = Ode.rkf45 ~rtol:1e-10 ~atol:1e-12 decay ~t0:0. ~t1:3. ~y0:[| 1. |] in
  check_float ~eps:1e-9 "adaptive decay" (exp (-3.)) r.Ode.y.(0);
  check_true "took steps" (r.Ode.steps_taken > 0)

let test_rkf45_stiff_ish () =
  (* Fast decay forces small steps; accepts and rejects both happen. *)
  let fast _t y = [| -50. *. y.(0) |] in
  let r = Ode.rkf45 ~rtol:1e-8 fast ~t0:0. ~t1:1. ~y0:[| 1. |] in
  check_float ~eps:1e-7 "fast decay" (exp (-50.)) r.Ode.y.(0)

let test_event_detection () =
  (* y' = -1 from y(0)=1 crosses zero at t = 1. *)
  let f _t _y = [| -1. |] in
  (match Ode.integrate_until ~step:0.3 ~event:(fun _ y -> y.(0)) f ~t0:0.
           ~t1:5. ~y0:[| 1. |]
   with
  | Ode.Event (t, y) ->
      check_float ~eps:1e-9 "crossing time" 1. t;
      check_float ~eps:1e-9 "state at event" 0. y.(0)
  | Ode.Reached_end _ -> Alcotest.fail "expected event")

let test_event_not_reached () =
  let f _t _y = [| -1. |] in
  match Ode.integrate_until ~step:0.3 ~event:(fun _ y -> y.(0)) f ~t0:0. ~t1:0.5
          ~y0:[| 1. |]
  with
  | Ode.Reached_end y -> check_float ~eps:1e-9 "end state" 0.5 y.(0)
  | Ode.Event _ -> Alcotest.fail "no event expected"

let test_event_immediate () =
  let f _t _y = [| -1. |] in
  match Ode.integrate_until ~event:(fun _ y -> y.(0)) f ~t0:0. ~t1:1.
          ~y0:[| 0. |]
  with
  | Ode.Event (t, _) -> check_float "immediate" 0. t
  | Ode.Reached_end _ -> Alcotest.fail "expected immediate event"

let test_invalid_args () =
  check_raises_invalid "reverse time" (fun () ->
      ignore (Ode.integrate decay ~t0:1. ~t1:0. ~y0:[| 1. |]));
  check_raises_invalid "bad step" (fun () ->
      ignore (Ode.integrate ~step:(-0.1) decay ~t0:0. ~t1:1. ~y0:[| 1. |]))

let prop_rk4_vs_exact_decay =
  qcheck ~count:50 "rk4 matches exact exponential"
    (pos_float_arb 0.1 3.)
    (fun rate ->
      let f _t y = [| -.rate *. y.(0) |] in
      let y = Ode.integrate ~step:0.005 f ~t0:0. ~t1:1. ~y0:[| 2. |] in
      Float.abs (y.(0) -. (2. *. exp (-.rate))) < 1e-8)

let suite =
  [
    case "euler step" test_euler_first_order;
    case "rk4 accuracy" test_rk4_accuracy;
    case "rk4 convergence order" test_rk4_convergence_order;
    case "oscillator energy" test_oscillator_energy;
    case "trace" test_trace;
    case "rkf45 adaptive" test_rkf45;
    case "rkf45 fast decay" test_rkf45_stiff_ish;
    case "event detection" test_event_detection;
    case "event not reached" test_event_not_reached;
    case "event at start" test_event_immediate;
    case "invalid arguments" test_invalid_args;
    prop_rk4_vs_exact_decay;
  ]
