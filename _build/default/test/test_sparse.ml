open Batlife_numerics
open Helpers

let build_matrix entries ~rows ~cols =
  let b = Sparse.Builder.create ~rows ~cols () in
  List.iter (fun (i, j, v) -> Sparse.Builder.add b i j v) entries;
  Sparse.of_builder b

let test_builder_basics () =
  let b = Sparse.Builder.create ~rows:3 ~cols:3 () in
  Sparse.Builder.add b 0 0 1.;
  Sparse.Builder.add b 0 0 0.;
  (* Zeros ignored. *)
  check_int "nnz skips zero" 1 (Sparse.Builder.nnz b);
  check_int "rows" 3 (Sparse.Builder.rows b);
  check_raises_invalid "out of bounds" (fun () -> Sparse.Builder.add b 3 0 1.)

let test_duplicate_merge () =
  let m = build_matrix [ (1, 2, 1.5); (1, 2, 2.5); (0, 0, 1.) ] ~rows:3 ~cols:3 in
  check_int "nnz merged" 2 (Sparse.nnz m);
  check_float "summed" 4. (Sparse.get m 1 2)

let test_cancellation_dropped () =
  let m = build_matrix [ (0, 1, 2.); (0, 1, -2.) ] ~rows:2 ~cols:2 in
  check_int "exact cancellation removed" 0 (Sparse.nnz m)

let test_get () =
  let m = build_matrix [ (0, 2, 3.); (1, 0, -1.) ] ~rows:2 ~cols:3 in
  check_float "present" 3. (Sparse.get m 0 2);
  check_float "absent" 0. (Sparse.get m 0 1);
  check_raises_invalid "bounds" (fun () -> ignore (Sparse.get m 2 0))

let test_matvec_known () =
  let m = build_matrix [ (0, 0, 1.); (0, 1, 2.); (1, 1, 3.) ] ~rows:2 ~cols:2 in
  let y = Sparse.matvec m [| 1.; 10. |] in
  check_float "row 0" 21. y.(0);
  check_float "row 1" 30. y.(1)

let test_vecmat_known () =
  let m = build_matrix [ (0, 0, 1.); (0, 1, 2.); (1, 1, 3.) ] ~rows:2 ~cols:2 in
  let y = Sparse.vecmat [| 1.; 10. |] m in
  check_float "col 0" 1. y.(0);
  check_float "col 1" 32. y.(1)

let test_vecmat_acc () =
  let m = build_matrix [ (0, 1, 4.) ] ~rows:2 ~cols:2 in
  let dst = [| 1.; 1. |] in
  Sparse.vecmat_acc ~src:[| 2.; 0. |] m ~scale:0.5 ~dst;
  check_float "accumulated" 5. dst.(1);
  check_float "untouched" 1. dst.(0)

let test_row_sums_scale () =
  let m = build_matrix [ (0, 0, 1.); (0, 1, 2.); (1, 0, 5.) ] ~rows:2 ~cols:2 in
  let sums = Sparse.row_sums m in
  check_float "row 0" 3. sums.(0);
  check_float "row 1" 5. sums.(1);
  let doubled = Sparse.scale 2. m in
  check_float "scaled" 4. (Sparse.get doubled 0 1)

let test_transpose () =
  let m = build_matrix [ (0, 1, 2.); (1, 0, 3.) ] ~rows:2 ~cols:2 in
  let t = Sparse.transpose m in
  check_float "transposed 1 0" 2. (Sparse.get t 1 0);
  check_float "transposed 0 1" 3. (Sparse.get t 0 1)

let test_dense_roundtrip () =
  let d = Dense.of_arrays [| [| 1.; 0.; 2. |]; [| 0.; 0.; 3. |] |] in
  let m = Sparse.of_dense d in
  check_int "nnz" 3 (Sparse.nnz m);
  check_true "roundtrip" (Dense.approx_equal (Sparse.to_dense m) d)

let test_max_abs_diagonal () =
  let m =
    build_matrix [ (0, 0, -4.); (1, 1, 2.); (0, 1, 100.) ] ~rows:2 ~cols:2
  in
  check_float "max |diag|" 4. (Sparse.max_abs_diagonal m)

let random_sparse_arb =
  QCheck.(
    list_of_size (Gen.int_range 0 40)
      (triple (int_range 0 5) (int_range 0 5) (float_range (-10.) 10.)))

let prop_matvec_matches_dense =
  qcheck ~count:200 "sparse matvec = dense matvec"
    QCheck.(pair random_sparse_arb (float_array_arb 6))
    (fun (entries, x) ->
      let triples = List.map (fun (i, j, v) -> (i, j, v)) entries in
      let m = build_matrix triples ~rows:6 ~cols:6 in
      let d = Sparse.to_dense m in
      Vector.approx_equal ~tol:1e-9 (Sparse.matvec m x) (Dense.matvec d x))

let prop_vecmat_matches_dense =
  qcheck ~count:200 "sparse vecmat = dense vecmat"
    QCheck.(pair random_sparse_arb (float_array_arb 6))
    (fun (entries, x) ->
      let m = build_matrix entries ~rows:6 ~cols:6 in
      let d = Sparse.to_dense m in
      Vector.approx_equal ~tol:1e-9 (Sparse.vecmat x m) (Dense.vecmat x d))

let prop_transpose_involution =
  qcheck ~count:100 "transpose twice is identity" random_sparse_arb
    (fun entries ->
      let m = build_matrix entries ~rows:6 ~cols:6 in
      let tt = Sparse.transpose (Sparse.transpose m) in
      Dense.approx_equal (Sparse.to_dense m) (Sparse.to_dense tt))

let suite =
  [
    case "builder basics" test_builder_basics;
    case "duplicates merged" test_duplicate_merge;
    case "cancellation dropped" test_cancellation_dropped;
    case "get" test_get;
    case "matvec" test_matvec_known;
    case "vecmat" test_vecmat_known;
    case "vecmat_acc" test_vecmat_acc;
    case "row sums and scale" test_row_sums_scale;
    case "transpose" test_transpose;
    case "dense roundtrip" test_dense_roundtrip;
    case "max abs diagonal" test_max_abs_diagonal;
    prop_matvec_matches_dense;
    prop_vecmat_matches_dense;
    prop_transpose_involution;
  ]
