open Batlife_numerics
open Helpers

let test_create_fill () =
  let v = Vector.create 4 in
  check_float "zeroed" 0. (Vector.sum v);
  Vector.fill v 2.5;
  check_float "filled sum" 10. (Vector.sum v)

let test_make_init () =
  let v = Vector.make 3 1.5 in
  check_float "make" 4.5 (Vector.sum v);
  let w = Vector.init 4 (fun i -> float_of_int i) in
  check_float "init" 6. (Vector.sum w)

let test_blit () =
  let src = [| 1.; 2.; 3. |] and dst = Vector.create 3 in
  Vector.blit ~src ~dst;
  check_float "copied" 0. (Vector.dist_inf src dst);
  check_raises_invalid "length mismatch" (fun () ->
      Vector.blit ~src ~dst:(Vector.create 2))

let test_scale () =
  let v = [| 1.; -2.; 3. |] in
  let w = Vector.scale 2. v in
  check_float "scale fresh" 4. (Vector.sum w);
  check_float "original untouched" 2. (Vector.sum v);
  Vector.scale_inplace (-1.) v;
  check_float "scale in place" (-2.) (Vector.sum v)

let test_add_sub () =
  let x = [| 1.; 2. |] and y = [| 10.; 20. |] in
  check_float "add" 33. (Vector.sum (Vector.add x y));
  check_float "sub" (-27.) (Vector.sum (Vector.sub x y));
  check_raises_invalid "add mismatch" (fun () -> Vector.add x [| 1. |])

let test_axpy () =
  let x = [| 1.; 2.; 3. |] and y = [| 1.; 1.; 1. |] in
  Vector.axpy ~alpha:2. ~x ~y;
  check_float "axpy y0" 3. y.(0);
  check_float "axpy y2" 7. y.(2)

let test_dot_norms () =
  let v = [| 3.; -4. |] in
  check_float "dot" 25. (Vector.dot v v);
  check_float "norm1" 7. (Vector.norm1 v);
  check_float "norm2" 5. (Vector.norm2 v);
  check_float "norm_inf" 4. (Vector.norm_inf v)

let test_extrema () =
  let v = [| -1.; 5.; 2. |] in
  check_float "max" 5. (Vector.max_elt v);
  check_float "min" (-1.) (Vector.min_elt v);
  check_raises_invalid "empty max" (fun () -> Vector.max_elt [||])

let test_normalize () =
  let v = Vector.normalize1 [| 1.; 3. |] in
  check_float "normalized sum" 1. (Vector.sum v);
  check_float "first" 0.25 v.(0);
  check_raises_invalid "zero sum" (fun () -> Vector.normalize1 [| 0.; 0. |])

let test_linspace () =
  let v = Vector.linspace 0. 1. 5 in
  check_int "length" 5 (Array.length v);
  check_float "first" 0. v.(0);
  check_float "middle" 0.5 v.(2);
  check_float "last" 1. v.(4);
  check_raises_invalid "n too small" (fun () -> ignore (Vector.linspace 0. 1. 1))

let test_approx_equal () =
  check_true "close" (Vector.approx_equal ~tol:1e-6 [| 1. |] [| 1. +. 1e-7 |]);
  check_true "far" (not (Vector.approx_equal ~tol:1e-9 [| 1. |] [| 1.1 |]));
  check_true "length" (not (Vector.approx_equal [| 1. |] [| 1.; 2. |]))

let prop_axpy_linear =
  qcheck "axpy equals add of scaled" (float_array_arb 8) (fun x ->
      let y = Array.make 8 1. in
      let expected = Vector.add (Vector.scale 3. x) y in
      Vector.axpy ~alpha:3. ~x ~y;
      Vector.approx_equal ~tol:1e-9 expected y)

let prop_triangle_inequality =
  qcheck "norm2 triangle inequality"
    QCheck.(pair (float_array_arb 6) (float_array_arb 6))
    (fun (x, y) ->
      Vector.norm2 (Vector.add x y)
      <= Vector.norm2 x +. Vector.norm2 y +. 1e-9)

let suite =
  [
    case "create and fill" test_create_fill;
    case "make and init" test_make_init;
    case "blit" test_blit;
    case "scale" test_scale;
    case "add and sub" test_add_sub;
    case "axpy" test_axpy;
    case "dot and norms" test_dot_norms;
    case "extrema" test_extrema;
    case "normalize1" test_normalize;
    case "linspace" test_linspace;
    case "approx_equal" test_approx_equal;
    prop_axpy_linear;
    prop_triangle_inequality;
  ]
