open Batlife_ctmc
open Helpers

(* A 4-state chain: 0 -> 1 -> 3 (goal) and 0 -> 2 (trap). *)
let branching () =
  Generator.of_rates ~n:4 [ (0, 1, 1.); (0, 2, 1.); (1, 3, 2.) ]

let mask n indices =
  let m = Array.make n false in
  List.iter (fun i -> m.(i) <- true) indices;
  m

let test_bounded_reach_two_state () =
  (* 0 -> 1 at rate a: P(reach 1 by t) = 1 - e^{-a t}. *)
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.5) ] in
  let goal = mask 2 [ 1 ] in
  List.iter
    (fun t ->
      check_float ~eps:1e-10
        (Printf.sprintf "t=%g" t)
        (1. -. exp (-1.5 *. t))
        (Reachability.bounded_reach g ~alpha:[| 1.; 0. |] ~goal ~t))
    [ 0.; 0.3; 1.; 4. ]

let test_bounded_until_avoid () =
  (* Hypoexponential path 0 -> 1 -> 2 with an avoid state in the
     middle: the goal can then never be reached legally. *)
  let g = Generator.of_rates ~n:3 [ (0, 1, 2.); (1, 2, 2.) ] in
  let goal = mask 3 [ 2 ] and avoid = mask 3 [ 1 ] in
  check_float "blocked" 0.
    (Reachability.bounded_until g ~alpha:[| 1.; 0.; 0. |] ~avoid ~goal ~t:10.);
  (* Without the avoid constraint it is the Erlang-2 CDF. *)
  check_float ~eps:1e-10 "unblocked"
    (Phase_type.erlang_cdf ~k:2 ~rate:2. 10.)
    (Reachability.bounded_reach g ~alpha:[| 1.; 0.; 0. |] ~goal ~t:10.)

let test_goal_locks_in () =
  (* Once the goal is visited the probability must not decay, even if
     the original chain would leave the goal state. *)
  let g = Generator.of_rates ~n:2 [ (0, 1, 3.); (1, 0, 100.) ] in
  let goal = mask 2 [ 1 ] in
  let p_small =
    Reachability.bounded_reach g ~alpha:[| 1.; 0. |] ~goal ~t:0.5
  in
  let p_large =
    Reachability.bounded_reach g ~alpha:[| 1.; 0. |] ~goal ~t:5.
  in
  check_true "monotone in t" (p_large >= p_small);
  check_float ~eps:1e-6 "eventually certain" 1. p_large

let test_eventually_branching () =
  (* From state 0 the race 0->1 vs 0->2 is fair; the trap at 2 kills
     half the mass. *)
  let g = branching () in
  let p =
    Reachability.eventually g ~alpha:[| 1.; 0.; 0.; 0. |]
      ~avoid:(mask 4 []) ~goal:(mask 4 [ 3 ])
  in
  check_float ~eps:1e-10 "half reaches" 0.5 p

let test_eventually_with_avoid () =
  (* Cycle 0 -> 1 -> 0 with an exit 1 -> 2: avoiding state 1 makes the
     goal unreachable. *)
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 0, 1.); (1, 2, 1.) ] in
  check_float "blocked by avoid" 0.
    (Reachability.eventually g ~alpha:[| 1.; 0.; 0. |]
       ~avoid:(mask 3 [ 1 ]) ~goal:(mask 3 [ 2 ]));
  check_float ~eps:1e-10 "reached without avoid" 1.
    (Reachability.eventually g ~alpha:[| 1.; 0.; 0. |] ~avoid:(mask 3 [])
       ~goal:(mask 3 [ 2 ]))

let test_eventually_bounded_limit () =
  (* bounded_until at a large horizon approaches eventually. *)
  let g = branching () in
  let alpha = [| 1.; 0.; 0.; 0. |] in
  let goal = mask 4 [ 3 ] and avoid = mask 4 [] in
  let unbounded = Reachability.eventually g ~alpha ~avoid ~goal in
  let bounded =
    Reachability.bounded_until g ~alpha ~avoid ~goal ~t:200.
  in
  check_float ~eps:1e-9 "limit" unbounded bounded

let test_expected_hitting_time_erlang () =
  (* 0 -> 1 -> 2: expected hitting time of 2 is 1/2 + 1/3. *)
  let g = Generator.of_rates ~n:3 [ (0, 1, 2.); (1, 2, 3.) ] in
  check_float ~eps:1e-10 "hypoexp mean"
    (1. /. 2. +. 1. /. 3.)
    (Reachability.expected_hitting_time g ~alpha:[| 1.; 0.; 0. |]
       ~goal:(mask 3 [ 2 ]))

let test_expected_hitting_time_cyclic () =
  (* Two-state cycle with absorption: matches the phase-type mean. *)
  let g =
    Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 0, 4.); (1, 2, 1.) ]
  in
  let d = Phase_type.of_absorbing_ctmc g ~alpha:[| 1.; 0.; 0. |] in
  check_close ~rel:1e-9 "matches PH mean" (Phase_type.mean d)
    (Reachability.expected_hitting_time g ~alpha:[| 1.; 0.; 0. |]
       ~goal:(mask 3 [ 2 ]))

let test_expected_hitting_time_infinite () =
  let g = branching () in
  check_true "trap makes it infinite"
    (Reachability.expected_hitting_time g ~alpha:[| 1.; 0.; 0.; 0. |]
       ~goal:(mask 4 [ 3 ])
    = infinity)

let test_validation () =
  let g = branching () in
  check_raises_invalid "alpha length" (fun () ->
      ignore
        (Reachability.bounded_reach g ~alpha:[| 1. |] ~goal:(mask 4 [ 3 ])
           ~t:1.));
  check_raises_invalid "empty goal" (fun () ->
      ignore
        (Reachability.expected_hitting_time g ~alpha:[| 1.; 0.; 0.; 0. |]
           ~goal:(mask 4 [])))

let test_battery_application () =
  (* A KiBaMRM-flavoured query on the expanded chain: "the device
     survives 10 hours" as reachability on the discretised model. *)
  let workload = Batlife_workload.Simple.model () in
  let battery = Batlife_battery.Kibam.params ~capacity:800. ~c:0.625 ~k:0.162 in
  let model = Batlife_core.Kibamrm.create ~workload ~battery in
  let d = Batlife_core.Discretized.build ~delta:25. model in
  let g = d.Batlife_core.Discretized.generator in
  let n = Generator.n_states g in
  let block =
    Batlife_core.Grid.absorbing_block_size d.Batlife_core.Discretized.grid
  in
  let goal = Array.init n (fun i -> i < block) in
  let p_dead =
    Reachability.bounded_reach g ~alpha:d.Batlife_core.Discretized.alpha ~goal
      ~t:10.
  in
  let direct, _ =
    Batlife_core.Discretized.empty_probability d ~times:[| 10. |]
  in
  check_float ~eps:1e-9 "agrees with empty_probability" direct.(0) p_dead

let suite =
  [
    case "bounded reach: two states" test_bounded_reach_two_state;
    case "bounded until with avoid" test_bounded_until_avoid;
    case "goal locks in" test_goal_locks_in;
    case "eventually: branching" test_eventually_branching;
    case "eventually with avoid" test_eventually_with_avoid;
    case "bounded limit is eventually" test_eventually_bounded_limit;
    case "hitting time: hypoexponential" test_expected_hitting_time_erlang;
    case "hitting time: cyclic" test_expected_hitting_time_cyclic;
    case "hitting time: infinite" test_expected_hitting_time_infinite;
    case "validation" test_validation;
    case "battery application" test_battery_application;
  ]
