open Batlife_battery
open Helpers

(* A battery with alpha = 40000 charge units and beta^2 = 0.2 per time
   unit (the ballpark of the Rakhmatov-Vrudhula paper's Itsy
   calibration, in minutes). *)
let p () = Rakhmatov.params ~alpha:40000. 0.2

let test_params_validation () =
  check_raises_invalid "alpha" (fun () ->
      ignore (Rakhmatov.params ~alpha:0. 1.));
  check_raises_invalid "beta" (fun () ->
      ignore (Rakhmatov.params ~alpha:1. 0.));
  check_raises_invalid "harmonics" (fun () ->
      ignore (Rakhmatov.params ~harmonics:0 ~alpha:1. 1.))

let test_initial_state () =
  let p = p () in
  let s = Rakhmatov.initial p in
  check_float "nothing consumed" 0. s.Rakhmatov.consumed;
  check_float "no gradient" 0. (Rakhmatov.unavailable_charge p s);
  check_float "apparent charge" 0. (Rakhmatov.apparent_charge p s)

let test_step_consumption () =
  let p = p () in
  let s = Rakhmatov.step p ~load:100. ~dt:10. (Rakhmatov.initial p) in
  check_float ~eps:1e-9 "consumed" 1000. s.Rakhmatov.consumed;
  check_true "gradient built up" (Rakhmatov.unavailable_charge p s > 0.);
  (* Apparent charge exceeds real consumption under load. *)
  check_true "sigma > consumed" (Rakhmatov.apparent_charge p s > 1000.)

let test_recovery_during_rest () =
  let p = p () in
  let loaded = Rakhmatov.step p ~load:100. ~dt:10. (Rakhmatov.initial p) in
  let rested = Rakhmatov.step p ~load:0. ~dt:50. loaded in
  check_true "gradient relaxes"
    (Rakhmatov.unavailable_charge p rested
    < Rakhmatov.unavailable_charge p loaded /. 2.);
  check_float ~eps:1e-9 "no charge consumed while resting"
    loaded.Rakhmatov.consumed rested.Rakhmatov.consumed

let test_step_additivity () =
  let p = p () in
  let s0 = Rakhmatov.initial p in
  let one = Rakhmatov.step p ~load:50. ~dt:8. s0 in
  let two = Rakhmatov.step p ~load:50. ~dt:5. (Rakhmatov.step p ~load:50. ~dt:3. s0) in
  check_float ~eps:1e-9 "consumed equal" one.Rakhmatov.consumed
    two.Rakhmatov.consumed;
  check_float ~eps:1e-9 "gradient equal"
    (Rakhmatov.unavailable_charge p one)
    (Rakhmatov.unavailable_charge p two)

let test_lifetime_below_ideal () =
  let p = p () in
  let load = 100. in
  let l = Rakhmatov.lifetime_constant p ~load in
  check_true "below ideal" (l < 40000. /. load);
  check_true "positive" (l > 0.);
  (* The apparent charge at the reported instant equals alpha. *)
  let s = Rakhmatov.step p ~load ~dt:l (Rakhmatov.initial p) in
  check_close ~rel:1e-9 "sigma = alpha at death" 40000.
    (Rakhmatov.apparent_charge p s)

let test_lifetime_monotone_in_load () =
  let p = p () in
  let l1 = Rakhmatov.lifetime_constant p ~load:50. in
  let l2 = Rakhmatov.lifetime_constant p ~load:100. in
  let l3 = Rakhmatov.lifetime_constant p ~load:200. in
  check_true "monotone" (l1 > l2 && l2 > l3)

let test_delivered_charge_limits () =
  let p = p () in
  (* Tiny loads recover everything: delivered -> alpha. *)
  check_close ~rel:0.02 "tiny load delivers alpha" 40000.
    (Rakhmatov.delivered_charge p ~load:1.);
  (* Heavy loads lose a substantial fraction to the gradient. *)
  check_true "heavy load delivers less"
    (Rakhmatov.delivered_charge p ~load:1000. < 0.9 *. 40000.)

let test_recovery_effect_on_delivered_charge () =
  (* The Rakhmatov-Vrudhula recovery effect: at the same discharge
     current, interleaving idle periods lets the gradient relax, so
     the battery delivers more total charge than under the continuous
     load (even though the wall-clock lifetime is of course longer). *)
  let p = p () in
  let load = 200. in
  let continuous = Rakhmatov.lifetime_constant p ~load in
  let pulsed =
    match
      Rakhmatov.lifetime p (Load_profile.square_wave ~frequency:0.1 ~on_load:load)
    with
    | Some t -> t
    | None -> Alcotest.fail "must deplete"
  in
  let delivered_continuous = load *. continuous in
  let delivered_pulsed = load *. pulsed /. 2. in
  check_true "pulsing delivers more charge at the same current"
    (delivered_pulsed > delivered_continuous)

let test_fast_pulse_behaves_like_average () =
  let p = p () in
  let average = Rakhmatov.lifetime_constant p ~load:100. in
  let fast =
    match
      Rakhmatov.lifetime p (Load_profile.square_wave ~frequency:10. ~on_load:200.)
    with
    | Some t -> t
    | None -> Alcotest.fail "must deplete"
  in
  check_close ~rel:0.02 "fast pulse ~ average" average fast;
  (* Whereas a very slow pulse dies within its first on-period, at the
     full-load lifetime. *)
  let slow =
    match
      Rakhmatov.lifetime p
        (Load_profile.square_wave ~frequency:0.001 ~on_load:200.)
    with
    | Some t -> t
    | None -> Alcotest.fail "must deplete"
  in
  check_close ~rel:1e-6 "slow pulse dies in first burst"
    (Rakhmatov.lifetime_constant p ~load:200.)
    slow

let test_empty_within_bounds () =
  let p = p () in
  (match Rakhmatov.empty_within p ~load:100. ~dt:1. (Rakhmatov.initial p) with
  | None -> ()
  | Some _ -> Alcotest.fail "cannot die in 1 time unit");
  match Rakhmatov.empty_within p ~load:0. ~dt:1e6 (Rakhmatov.initial p) with
  | None -> ()
  | Some _ -> Alcotest.fail "resting battery cannot die"

let test_fit_beta_roundtrip () =
  let original = Rakhmatov.params ~alpha:40000. 0.37 in
  let target = Rakhmatov.lifetime_constant original ~load:120. in
  let fitted = Rakhmatov.fit_beta ~alpha:40000. ~load:120. ~target_lifetime:target in
  check_close ~rel:1e-5 "beta recovered" 0.37 fitted.Rakhmatov.beta_sq

let test_fit_beta_unattainable () =
  match Rakhmatov.fit_beta ~alpha:100. ~load:1. ~target_lifetime:200. with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "target above ideal must fail"

let test_harmonics_convergence () =
  (* The truncated series converges: 40 vs 80 harmonics agree. *)
  let l harmonics =
    Rakhmatov.lifetime_constant
      (Rakhmatov.params ~harmonics ~alpha:40000. 0.2)
      ~load:100.
  in
  check_close ~rel:1e-3 "truncation converged" (l 80) (l 40)

let prop_sigma_dominates_consumed =
  qcheck ~count:100 "apparent charge >= consumed charge"
    QCheck.(pair (pos_float_arb 1. 500.) (pos_float_arb 0.1 50.))
    (fun (load, dt) ->
      let p = p () in
      let s = Rakhmatov.step p ~load ~dt (Rakhmatov.initial p) in
      Rakhmatov.apparent_charge p s >= s.Rakhmatov.consumed -. 1e-9)

let prop_lifetime_below_ideal =
  qcheck ~count:50 "lifetime below the ideal battery"
    (pos_float_arb 10. 1000.)
    (fun load ->
      let p = p () in
      Rakhmatov.lifetime_constant p ~load <= (40000. /. load) +. 1e-9)

let suite =
  [
    case "params validation" test_params_validation;
    case "initial state" test_initial_state;
    case "step consumption" test_step_consumption;
    case "recovery during rest" test_recovery_during_rest;
    case "step additivity" test_step_additivity;
    case "lifetime below ideal" test_lifetime_below_ideal;
    case "lifetime monotone in load" test_lifetime_monotone_in_load;
    case "delivered charge limits" test_delivered_charge_limits;
    case "recovery effect on delivered charge"
      test_recovery_effect_on_delivered_charge;
    case "fast pulse behaves like average" test_fast_pulse_behaves_like_average;
    case "empty_within bounds" test_empty_within_bounds;
    case "fit beta roundtrip" test_fit_beta_roundtrip;
    case "fit beta unattainable" test_fit_beta_unattainable;
    case "harmonics convergence" test_harmonics_convergence;
    prop_sigma_dominates_consumed;
    prop_lifetime_below_ideal;
  ]
