open Batlife_numerics
open Helpers

let quadratic x = (x *. x) -. 2.

let test_bisect () =
  check_float ~eps:1e-9 "sqrt 2" (sqrt 2.) (Roots.bisect quadratic 0. 2.);
  check_float ~eps:1e-9 "negative root" (-.sqrt 2.)
    (Roots.bisect quadratic (-2.) 0.);
  check_float "exact endpoint" 2. (Roots.bisect (fun x -> x -. 2.) 2. 5.)

let test_bisect_no_root () =
  match Roots.bisect quadratic 2. 3. with
  | exception Roots.No_root _ -> ()
  | _ -> Alcotest.fail "expected No_root"

let test_brent () =
  check_float ~eps:1e-9 "sqrt 2" (sqrt 2.) (Roots.brent quadratic 0. 2.);
  check_float ~eps:1e-9 "cosine" (Float.pi /. 2.) (Roots.brent cos 0. 3.);
  (* A nastier function with a flat region. *)
  let f x = if x < 1. then -1e-3 else (x -. 1.5) ** 3. in
  check_float ~eps:1e-7 "flat then cubic" 1.5 (Roots.brent f 0. 4.)

let test_brent_transcendental () =
  (* x e^x = 5 -> x = W(5) ~ 1.326724665. *)
  let f x = (x *. exp x) -. 5. in
  check_float ~eps:1e-9 "lambert-like" 1.3267246652422002
    (Roots.brent f 0. 3.)

let test_secant () =
  check_float ~eps:1e-9 "sqrt 2" (sqrt 2.) (Roots.secant quadratic 1. 2.);
  (match Roots.secant (fun _ -> 1.) 0. 1. with
  | exception Roots.No_root _ -> ()
  | _ -> Alcotest.fail "flat function should fail")

let test_expand_bracket () =
  let f x = x -. 100. in
  let a, b = Roots.expand_bracket f 0. 1. in
  check_true "bracket found" (f a *. f b <= 0.);
  (match Roots.expand_bracket (fun _ -> 1.) 0. 1. with
  | exception Roots.No_root _ -> ()
  | _ -> Alcotest.fail "no sign change should fail");
  check_raises_invalid "bad interval" (fun () ->
      ignore (Roots.expand_bracket quadratic 1. 1.))

let prop_brent_finds_planted_root =
  qcheck "brent finds planted root" (pos_float_arb 0.1 50.) (fun r ->
      let f x = (x -. r) *. (1. +. (0.1 *. x)) in
      let root = Roots.brent f 0. 100. in
      Float.abs (root -. r) < 1e-7 *. Float.max r 1.)

let prop_bisect_brent_agree =
  qcheck "bisect and brent agree" (pos_float_arb 0.2 0.9) (fun r ->
      (* A single planted root at x = r, guaranteed sign change. *)
      let f x = tanh (3. *. (x -. r)) in
      let b1 = Roots.bisect f 0. 1. and b2 = Roots.brent f 0. 1. in
      Float.abs (b1 -. b2) < 1e-7)

let suite =
  [
    case "bisect" test_bisect;
    case "bisect without sign change" test_bisect_no_root;
    case "brent" test_brent;
    case "brent transcendental" test_brent_transcendental;
    case "secant" test_secant;
    case "expand_bracket" test_expand_bracket;
    prop_brent_finds_planted_root;
    prop_bisect_brent_agree;
  ]
