open Batlife_battery
open Helpers

(* --- Ideal ---------------------------------------------------------- *)

let test_ideal () =
  check_float "lifetime" 100. (Ideal.lifetime ~capacity:200. ~load:2.);
  check_float "delivered" 20. (Ideal.delivered_charge ~load:2. ~duration:10.);
  check_float "duty cycle" 200.
    (Ideal.lifetime_duty_cycle ~capacity:200. ~load:2. ~duty:0.5);
  check_raises_invalid "bad load" (fun () ->
      ignore (Ideal.lifetime ~capacity:1. ~load:0.));
  check_raises_invalid "bad duty" (fun () ->
      ignore (Ideal.lifetime_duty_cycle ~capacity:1. ~load:1. ~duty:1.5))

(* --- Peukert -------------------------------------------------------- *)

let test_peukert_lifetime () =
  let p = Peukert.create ~a:100. ~b:1.2 in
  check_float ~eps:1e-12 "unit load" 100. (Peukert.lifetime p ~load:1.);
  check_close ~rel:1e-12 "heavier load"
    (100. /. Float.pow 2. 1.2)
    (Peukert.lifetime p ~load:2.);
  check_true "effective capacity shrinks with load"
    (Peukert.effective_capacity p ~load:2.
    < Peukert.effective_capacity p ~load:1.)

let test_peukert_fit_roundtrip () =
  let original = Peukert.create ~a:57.3 ~b:1.31 in
  let l1 = Peukert.lifetime original ~load:0.5
  and l2 = Peukert.lifetime original ~load:2.5 in
  let fitted = Peukert.fit (0.5, l1) (2.5, l2) in
  check_close ~rel:1e-9 "a recovered" original.Peukert.a fitted.Peukert.a;
  check_close ~rel:1e-9 "b recovered" original.Peukert.b fitted.Peukert.b

let test_peukert_validation () =
  check_raises_invalid "a" (fun () -> ignore (Peukert.create ~a:0. ~b:1.2));
  check_raises_invalid "b" (fun () -> ignore (Peukert.create ~a:1. ~b:0.9));
  check_raises_invalid "same loads" (fun () ->
      ignore (Peukert.fit (1., 2.) (1., 3.)))

(* --- Units ---------------------------------------------------------- *)

let test_units () =
  check_float "mah to as" 3600. (Units.mah_to_as 1000.);
  check_float "as to mah roundtrip" 800. (Units.as_to_mah (Units.mah_to_as 800.));
  check_float "ma to a" 0.2 (Units.ma_to_a 200.);
  check_float "hours" 7200. (Units.hours_to_seconds 2.);
  check_float "minutes" 90. (Units.seconds_to_minutes 5400.);
  check_float "rate conversion" 0.162
    (Units.per_second_to_per_hour 4.5e-5);
  check_close ~rel:1e-12 "rate roundtrip" 4.5e-5
    (Units.per_hour_to_per_second (Units.per_second_to_per_hour 4.5e-5))

(* --- Load profiles --------------------------------------------------- *)

let test_profile_load_at () =
  let p = Load_profile.square_wave ~frequency:0.5 ~on_load:2. in
  (* Period 2: [0,1) on, [1,2) off. *)
  check_float "on" 2. (Load_profile.load_at p 0.25);
  check_float "off" 0. (Load_profile.load_at p 1.5);
  check_float "next period" 2. (Load_profile.load_at p 2.1);
  check_float "average" 1. (Load_profile.average_load p)

let test_profile_finite () =
  let p =
    Load_profile.finite
      [
        { Load_profile.duration = 2.; load = 1. };
        { Load_profile.duration = 3.; load = 5. };
      ]
  in
  check_float "first" 1. (Load_profile.load_at p 1.);
  check_float "second" 5. (Load_profile.load_at p 4.);
  check_float "after end" 0. (Load_profile.load_at p 10.);
  check_close ~rel:1e-12 "average" (17. /. 5.) (Load_profile.average_load p)

let test_profile_segments_from () =
  let p = Load_profile.square_wave ~frequency:0.5 ~on_load:2. in
  (* Starting mid-way through the on segment. *)
  let segs = Load_profile.segments_from p 0.5 in
  (match List.of_seq (Seq.take 3 segs) with
  | [ (d1, l1); (d2, l2); (d3, l3) ] ->
      check_float "rest of on" 0.5 d1;
      check_float "on load" 2. l1;
      check_float "off" 1. d2;
      check_float "off load" 0. l2;
      check_float "wrapped" 1. d3;
      check_float "wrapped load" 2. l3
  | _ -> Alcotest.fail "expected segments");
  (* Constant profile yields a single infinite segment. *)
  match (Load_profile.segments_from (Load_profile.constant 3.) 0.) () with
  | Seq.Cons ((d, l), _) ->
      check_true "infinite" (d = infinity);
      check_float "load" 3. l
  | Seq.Nil -> Alcotest.fail "constant profile has segments"

let prop_segments_consistent_with_load_at =
  qcheck ~count:100 "segments_from agrees with load_at"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5)
           (pair (float_range 0.5 3.) (float_range 0. 5.)))
        (pos_float_arb 0. 10.))
    (fun (segments, t0) ->
      let profile =
        Load_profile.periodic
          (List.map
             (fun (duration, load) -> { Load_profile.duration; load })
             segments)
      in
      (* Walk the first few segments returned from t0 and verify the
         loads match pointwise probes of load_at (probing just inside
         each segment to avoid boundary ambiguity). *)
      let rec check time seq remaining =
        if remaining = 0 then true
        else
          match seq () with
          | Seq.Nil -> true
          | Seq.Cons ((duration, load), rest) ->
              let probe = time +. (duration /. 2.) in
              Float.abs (Load_profile.load_at profile probe -. load) < 1e-9
              && check (time +. duration) rest (remaining - 1)
      in
      check t0 (Load_profile.segments_from profile t0) 8)

let test_profile_validation () =
  check_raises_invalid "empty periodic" (fun () ->
      ignore (Load_profile.periodic []));
  check_raises_invalid "bad duration" (fun () ->
      ignore (Load_profile.finite [ { Load_profile.duration = 0.; load = 1. } ]));
  check_raises_invalid "negative load" (fun () ->
      ignore (Load_profile.constant (-1.)));
  check_raises_invalid "bad duty" (fun () ->
      ignore (Load_profile.duty_cycle_wave ~period:1. ~duty:1. ~on_load:1.))

(* --- Modified KiBaM -------------------------------------------------- *)

let base () = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5

let test_modified_gamma_zero_is_plain () =
  let p = Modified_kibam.params ~base:(base ()) ~gamma:0. in
  let s0 = Kibam.initial (base ()) in
  let plain = Kibam.step (base ()) ~load:0.96 ~dt:2000. s0 in
  let modified = Modified_kibam.step p ~load:0.96 ~dt:2000. s0 in
  check_float ~eps:1e-6 "y1 equal" plain.Kibam.available
    modified.Kibam.available;
  check_float ~eps:1e-6 "y2 equal" plain.Kibam.bound modified.Kibam.bound;
  check_close ~rel:1e-6 "lifetime equal"
    (Kibam.lifetime_constant (base ()) ~load:0.96)
    (Modified_kibam.lifetime_constant p ~load:0.96)

let test_modified_recovery_factor () =
  let p = Modified_kibam.params ~base:(base ()) ~gamma:3. in
  let full = Kibam.initial (base ()) in
  check_float ~eps:1e-12 "factor 1 at full" 1.
    (Modified_kibam.recovery_factor p full);
  let drained = Kibam.state (base ()) ~available:100. ~bound:100. in
  check_true "factor < 1 when drained"
    (Modified_kibam.recovery_factor p drained < 0.1)

let test_modified_shorter_life_with_gamma () =
  let lifetime gamma =
    let p = Modified_kibam.params ~base:(base ()) ~gamma in
    match
      Modified_kibam.lifetime p
        (Load_profile.square_wave ~frequency:0.1 ~on_load:0.96)
    with
    | Some t -> t
    | None -> Alcotest.fail "must deplete"
  in
  check_true "attenuated recovery shortens life"
    (lifetime 4. < lifetime 1. && lifetime 1. < lifetime 0. +. 1.)

let test_modified_validation () =
  check_raises_invalid "negative gamma" (fun () ->
      ignore (Modified_kibam.params ~base:(base ()) ~gamma:(-1.)))

(* --- Fit -------------------------------------------------------------- *)

let test_fit_c () =
  check_float ~eps:1e-12 "quotient" 0.625
    (Fit.c_from_capacities ~large_load_capacity:4500.
       ~small_load_capacity:7200.);
  check_raises_invalid "wrong order" (fun () ->
      ignore
        (Fit.c_from_capacities ~large_load_capacity:10.
           ~small_load_capacity:5.))

let test_fit_k_roundtrip () =
  let original = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5 in
  let target = Kibam.lifetime_constant original ~load:0.96 in
  let fitted =
    Fit.k_for_lifetime ~capacity:7200. ~c:0.625 ~load:0.96
      ~target_lifetime:target
  in
  check_close ~rel:1e-6 "k recovered" 4.5e-5 fitted.Kibam.k

let test_fit_k_out_of_range () =
  (* C/I is an upper bound on any attainable lifetime. *)
  match
    Fit.k_for_lifetime ~capacity:7200. ~c:0.625 ~load:0.96
      ~target_lifetime:(8000. /. 0.96)
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unattainable target should fail"

let test_fit_gamma () =
  let profile = Load_profile.square_wave ~frequency:1. ~on_load:0.96 in
  let p =
    Fit.gamma_for_lifetime ~capacity:7200. ~c:0.625 ~continuous_load:0.96
      ~continuous_lifetime:5400. ~target_lifetime:(193. *. 60.) profile
  in
  check_close ~rel:2e-3 "continuous lifetime preserved" 5400.
    (Modified_kibam.lifetime_constant p ~load:0.96);
  (match Modified_kibam.lifetime p profile with
  | Some t -> check_close ~rel:2e-3 "profile target met" (193. *. 60.) t
  | None -> Alcotest.fail "must deplete");
  check_true "gamma positive" (p.Modified_kibam.gamma > 0.)

let suite =
  [
    case "ideal battery" test_ideal;
    case "peukert lifetime" test_peukert_lifetime;
    case "peukert fit roundtrip" test_peukert_fit_roundtrip;
    case "peukert validation" test_peukert_validation;
    case "unit conversions" test_units;
    case "profile load_at" test_profile_load_at;
    case "finite profile" test_profile_finite;
    case "segments_from" test_profile_segments_from;
    prop_segments_consistent_with_load_at;
    case "profile validation" test_profile_validation;
    case "modified: gamma 0 is plain KiBaM" test_modified_gamma_zero_is_plain;
    case "modified: recovery factor" test_modified_recovery_factor;
    case "modified: gamma shortens life" test_modified_shorter_life_with_gamma;
    case "modified: validation" test_modified_validation;
    case "fit c" test_fit_c;
    case "fit k roundtrip" test_fit_k_roundtrip;
    case "fit k out of range" test_fit_k_out_of_range;
    slow_case "fit gamma" test_fit_gamma;
  ]
