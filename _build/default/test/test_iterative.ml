open Batlife_numerics
open Batlife_battery
open Batlife_workload
open Batlife_core
open Helpers

let sparse_of entries ~n =
  let b = Sparse.Builder.create ~rows:n ~cols:n () in
  List.iter (fun (i, j, v) -> Sparse.Builder.add b i j v) entries;
  Sparse.of_builder b

let test_jacobi_small_system () =
  (* Diagonally dominant 2x2. *)
  let a = sparse_of [ (0, 0, 4.); (0, 1, 1.); (1, 0, 2.); (1, 1, 5.) ] ~n:2 in
  let r = Iterative.jacobi a ~b:[| 9.; 19. |] in
  check_float ~eps:1e-8 "x0" 1.4444444444 r.Iterative.solution.(0);
  check_float ~eps:1e-8 "x1" 3.2222222222 r.Iterative.solution.(1);
  check_true "converged fast" (r.Iterative.iterations < 100)

let test_gauss_seidel_matches_jacobi () =
  let a =
    sparse_of
      [ (0, 0, 10.); (0, 1, 2.); (1, 0, 3.); (1, 1, 8.); (1, 2, 1.);
        (2, 1, 2.); (2, 2, 6.) ]
      ~n:3
  in
  let b = [| 1.; 2.; 3. |] in
  let j = Iterative.jacobi a ~b in
  let g = Iterative.gauss_seidel a ~b in
  check_true "solutions agree"
    (Vector.approx_equal ~tol:1e-7 j.Iterative.solution
       g.Iterative.solution);
  check_true "gauss-seidel no slower" (g.Iterative.iterations <= j.Iterative.iterations)

let test_matches_dense_lu () =
  let entries =
    [ (0, 0, 12.); (0, 2, 3.); (1, 1, 9.); (1, 0, -2.); (2, 2, 7.);
      (2, 1, 1.) ]
  in
  let a = sparse_of entries ~n:3 in
  let b = [| 5.; -1.; 2. |] in
  let direct = Dense.lu_solve (Sparse.to_dense a) b in
  let iterative = (Iterative.gauss_seidel a ~b).Iterative.solution in
  check_true "matches LU" (Vector.approx_equal ~tol:1e-8 direct iterative)

let test_zero_diagonal_rejected () =
  let a = sparse_of [ (0, 1, 1.); (1, 0, 1.); (1, 1, 1.) ] ~n:2 in
  check_raises_invalid "jacobi" (fun () ->
      ignore (Iterative.jacobi a ~b:[| 1.; 1. |]));
  check_raises_invalid "gauss-seidel" (fun () ->
      ignore (Iterative.gauss_seidel a ~b:[| 1.; 1. |]))

let test_divergence_detected () =
  (* Not diagonally dominant: Jacobi diverges. *)
  let a = sparse_of [ (0, 0, 1.); (0, 1, 5.); (1, 0, 5.); (1, 1, 1.) ] ~n:2 in
  match Iterative.jacobi ~max_iter:50 a ~b:[| 1.; 1. |] with
  | exception Iterative.Did_not_converge r ->
      check_true "budget honoured" (r.Iterative.iterations = 50)
  | _ -> Alcotest.fail "expected divergence"

let test_skip_rows_pinned () =
  (* Pin x0 = 7 and solve only row 1: 4 x1 = 10 - 2*7. *)
  let a = sparse_of [ (0, 0, 1.); (1, 0, 2.); (1, 1, 4.) ] ~n:2 in
  let r =
    Iterative.gauss_seidel ~x0:[| 7.; 0. |] ~skip:(fun i -> i = 0) a
      ~b:[| 0.; 10. |]
  in
  check_float "pinned" 7. r.Iterative.solution.(0);
  check_float ~eps:1e-10 "solved" (-1.) r.Iterative.solution.(1)

let prop_random_dominant_systems =
  qcheck ~count:100 "gauss-seidel solves random dominant systems"
    QCheck.(
      pair (float_array_arb 16)
        (array_of_size (Gen.return 4) (float_range (-3.) 3.)))
    (fun (entries, b) ->
      (* Shrinking may reduce the array sizes; those inputs are not in
         the intended domain. *)
      if Array.length entries <> 16 || Array.length b <> 4 then true
      else begin
        (* Off-diagonals in [-1, 1], diagonal >= 10: strictly
           diagonally dominant, so Gauss–Seidel must converge. *)
        let a =
          Dense.init ~rows:4 ~cols:4 (fun i j ->
              let v = entries.((4 * i) + j) /. 100. in
              if i = j then 10. +. Float.abs v else v)
        in
        let sp = Sparse.of_dense a in
        let x = (Iterative.gauss_seidel sp ~b).Iterative.solution in
        let r = Dense.matvec a x in
        Array.for_all2 (fun ri bi -> Float.abs (ri -. bi) < 1e-8) r b
      end)

(* --- Exact expected lifetime on the expanded chain ------------------- *)

let test_expected_lifetime_erlang_exact () =
  (* One-state workload, c = 1: the expanded chain is a pure Erlang
     cascade, absorption time = (levels to fall) * Delta / I. *)
  let workload =
    Model.of_spec ~states:[ ("on", 0.9) ] ~transitions:[] ~initial:"on"
  in
  let battery = Kibam.params ~capacity:100. ~c:1. ~k:0. in
  let model = Kibamrm.create ~workload ~battery in
  let delta = 5. in
  let d = Discretized.build ~delta model in
  (* Initial level of 100 at delta 5 is 19; it takes 19 consumption
     jumps at rate I/delta to reach level 0. *)
  check_float ~eps:1e-7 "Erlang mean" (19. *. delta /. 0.9)
    (Discretized.expected_lifetime d)

let test_expected_lifetime_matches_curve () =
  let model =
    Kibamrm.create
      ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
      ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)
  in
  let d = Discretized.build ~delta:100. model in
  let exact = Discretized.expected_lifetime d in
  (* Integrate the same chain's CDF over a wide grid. *)
  let times = Array.init 120 (fun i -> 250. *. float_of_int (i + 1)) in
  let curve = Lifetime.cdf ~delta:100. ~times model in
  check_close ~rel:2e-3 "curve integral matches exact mean"
    exact (Lifetime.mean curve)

let test_expected_lifetime_two_well () =
  (* Two-well: the exact mean must land between the no-recovery and
     full-capacity bounds and near the simulated mean. *)
  let model =
    Kibamrm.create
      ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
      ~battery:(Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5)
  in
  let d = Discretized.build ~delta:50. model in
  let exact = Discretized.expected_lifetime d in
  check_true "above available-only bound" (exact > 9000.);
  check_true "below full-capacity bound" (exact < 15000.);
  (* The simulation says ~12170; the Delta=50 grid is biased a few
     percent low. *)
  check_true "near simulated mean" (Float.abs (exact -. 12170.) < 800.)

let test_expected_lifetime_requires_absorbing () =
  let model =
    Kibamrm.create
      ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
      ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)
  in
  let d = Discretized.build ~absorb_empty:false ~delta:200. model in
  check_raises_invalid "live empty states" (fun () ->
      ignore (Discretized.expected_lifetime d))

let suite =
  [
    case "jacobi small system" test_jacobi_small_system;
    case "gauss-seidel matches jacobi" test_gauss_seidel_matches_jacobi;
    case "matches dense LU" test_matches_dense_lu;
    case "zero diagonal rejected" test_zero_diagonal_rejected;
    case "divergence detected" test_divergence_detected;
    case "skipped rows pinned" test_skip_rows_pinned;
    prop_random_dominant_systems;
    case "expected lifetime: Erlang exact" test_expected_lifetime_erlang_exact;
    slow_case "expected lifetime matches curve integral"
      test_expected_lifetime_matches_curve;
    slow_case "expected lifetime: two wells" test_expected_lifetime_two_well;
    case "expected lifetime requires absorbing"
      test_expected_lifetime_requires_absorbing;
  ]
