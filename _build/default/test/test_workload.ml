open Batlife_ctmc
open Batlife_workload
open Helpers

let test_of_spec () =
  let m =
    Model.of_spec
      ~states:[ ("a", 1.); ("b", 2.) ]
      ~transitions:[ ("a", "b", 3.); ("b", "a", 4.) ]
      ~initial:"b"
  in
  check_int "states" 2 (Model.n_states m);
  check_float "current a" 1. (Model.current m 0);
  check_float "rate" 3. (Generator.rate m.Model.generator 0 1);
  check_float "starts in b" 1. m.Model.initial.(1);
  check_int "index" 1 (Model.state_index m "b")

let test_of_spec_validation () =
  check_raises_invalid "duplicate state" (fun () ->
      ignore
        (Model.of_spec
           ~states:[ ("a", 1.); ("a", 2.) ]
           ~transitions:[] ~initial:"a"));
  check_raises_invalid "unknown target" (fun () ->
      ignore
        (Model.of_spec ~states:[ ("a", 1.) ]
           ~transitions:[ ("a", "zz", 1.) ]
           ~initial:"a"));
  check_raises_invalid "unknown initial" (fun () ->
      ignore (Model.of_spec ~states:[ ("a", 1.) ] ~transitions:[] ~initial:"x"))

let test_create_validation () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  check_raises_invalid "negative current" (fun () ->
      ignore (Model.create ~generator:g ~currents:[| -1.; 0. |]
                ~initial:[| 1.; 0. |]));
  check_raises_invalid "bad distribution" (fun () ->
      ignore
        (Model.create ~generator:g ~currents:[| 1.; 0. |]
           ~initial:[| 0.7; 0.7 |]))

let test_simple_steady_state () =
  (* The paper's numbers: pi(idle) = 0.5, pi(send) = pi(sleep) = 0.25. *)
  let m = Simple.model () in
  let pi = Model.steady_state m in
  check_float ~eps:1e-12 "idle" 0.5 pi.(Model.state_index m "idle");
  check_float ~eps:1e-12 "send" 0.25 pi.(Model.state_index m "send");
  check_float ~eps:1e-12 "sleep" 0.25 pi.(Model.state_index m "sleep");
  check_float ~eps:1e-12 "send probability" 0.25 (Simple.send_probability m);
  check_float ~eps:1e-12 "average current" 54. (Model.average_current m)

let test_burst_calibration () =
  (* lambda_burst = 182/h equalises the send probability with the
     simple model (the paper's calibration). *)
  let b = Burst.model () in
  check_float ~eps:5e-4 "send probability matches" 0.25
    (Simple.send_probability b);
  check_true "sleeps more than simple"
    (Simple.sleep_probability b > 0.25)

let test_burst_structure () =
  let b = Burst.model () in
  check_int "five states" 5 (Model.n_states b);
  check_float "starts off-idle" 1. b.Model.initial.(Model.state_index b "off-idle");
  (* No transition from sleep to any send state. *)
  let sleep = Model.state_index b "sleep" in
  check_float "sleep cannot send directly" 0.
    (Generator.rate b.Model.generator sleep (Model.state_index b "on-send"));
  check_true "sleep wakes to on-idle"
    (Generator.rate b.Model.generator sleep (Model.state_index b "on-idle") > 0.)

let test_onoff_structure () =
  let m = Onoff.model ~frequency:2. ~k:3 ~on_current:1. () in
  check_int "2k states" 6 (Model.n_states m);
  check_float "phase rate" 12. (Onoff.phase_rate ~frequency:2. ~k:3);
  check_float "half period" 0.25 (Onoff.expected_half_period ~frequency:2.);
  (* Currents: first k states draw, last k do not. *)
  for i = 0 to 2 do
    check_float (Printf.sprintf "on %d" i) 1. (Model.current m i)
  done;
  for i = 3 to 5 do
    check_float (Printf.sprintf "off %d" i) 0. (Model.current m i)
  done;
  check_float "max current" 1. (Model.max_current m)

let test_onoff_steady_state () =
  (* The cycle spends half its time on. *)
  let m = Onoff.model ~frequency:1. ~k:2 ~on_current:0.96 () in
  let pi = Model.steady_state m in
  let on_mass = pi.(0) +. pi.(1) in
  check_float ~eps:1e-12 "half on" 0.5 on_mass;
  check_float ~eps:1e-12 "average current" 0.48 (Model.average_current m)

let test_onoff_mean_cycle () =
  (* Expected on-duration: k phases at rate 2fk = 1/(2f). *)
  let f = 0.25 in
  let lambda = Onoff.phase_rate ~frequency:f ~k:4 in
  check_float ~eps:1e-12 "mean on time" (1. /. (2. *. f))
    (4. /. lambda)

let test_onoff_validation () =
  check_raises_invalid "bad frequency" (fun () ->
      ignore (Onoff.model ~frequency:0. ~k:1 ~on_current:1. ()));
  check_raises_invalid "bad k" (fun () ->
      ignore (Onoff.model ~frequency:1. ~k:0 ~on_current:1. ()));
  check_raises_invalid "bad current" (fun () ->
      ignore (Onoff.model ~frequency:1. ~k:1 ~on_current:0. ()))

let test_simple_custom_rates () =
  let rates = { Simple.lambda = 4.; mu = 12.; tau = 2. } in
  let m = Simple.model ~rates () in
  (* Doubling every rate leaves the steady state unchanged. *)
  check_float ~eps:1e-12 "send probability invariant" 0.25
    (Simple.send_probability m)

let suite =
  [
    case "of_spec" test_of_spec;
    case "of_spec validation" test_of_spec_validation;
    case "create validation" test_create_validation;
    case "simple model steady state" test_simple_steady_state;
    case "burst calibration" test_burst_calibration;
    case "burst structure" test_burst_structure;
    case "onoff structure" test_onoff_structure;
    case "onoff steady state" test_onoff_steady_state;
    case "onoff mean cycle" test_onoff_mean_cycle;
    case "onoff validation" test_onoff_validation;
    case "rate scaling invariance" test_simple_custom_rates;
  ]
