open Batlife_numerics
open Helpers

let test_interp_eval () =
  let t = Interp.create ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 10.; 0. |] in
  check_float "node" 10. (Interp.eval t 1.);
  check_float "midpoint" 5. (Interp.eval t 0.5);
  check_float "clamp left" 0. (Interp.eval t (-5.));
  check_float "clamp right" 0. (Interp.eval t 7.)

let test_interp_inverse () =
  let t = Interp.create ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 0.5; 1. |] in
  check_float "median" 1. (Interp.inverse t 0.5);
  check_float "quarter" 0.5 (Interp.inverse t 0.25);
  check_float "clamp low" 0. (Interp.inverse t (-1.));
  check_float "clamp high" 2. (Interp.inverse t 2.)

let test_interp_inverse_flat () =
  (* A flat stretch: the inverse picks the right end of the flat. *)
  let t = Interp.create ~xs:[| 0.; 1.; 2.; 3. |] ~ys:[| 0.; 0.5; 0.5; 1. |] in
  let x = Interp.inverse t 0.5 in
  check_true "within flat" (x >= 1. && x <= 2.)

let test_interp_validation () =
  check_raises_invalid "not increasing" (fun () ->
      ignore (Interp.create ~xs:[| 0.; 0. |] ~ys:[| 1.; 2. |]));
  check_raises_invalid "length mismatch" (fun () ->
      ignore (Interp.create ~xs:[| 0.; 1. |] ~ys:[| 1. |]));
  let t = Interp.create ~xs:[| 0.; 1. |] ~ys:[| 1.; 0. |] in
  check_raises_invalid "decreasing inverse" (fun () ->
      ignore (Interp.inverse t 0.5))

let test_trapezoid_sampled () =
  let xs = [| 0.; 1.; 3. |] and ys = [| 0.; 2.; 2. |] in
  check_float "piecewise linear area" 5. (Quadrature.trapezoid_sampled ~xs ~ys)

let test_trapezoid_function () =
  check_float ~eps:1e-4 "x^2 over [0,1]" (1. /. 3.)
    (Quadrature.trapezoid ~n:256 (fun x -> x *. x) 0. 1.)

let test_simpson_exact_cubics () =
  (* Simpson integrates cubics exactly. *)
  check_float ~eps:1e-12 "x^3" 0.25
    (Quadrature.simpson ~n:2 (fun x -> x ** 3.) 0. 1.);
  check_float ~eps:1e-12 "2x^3 - x" 0.
    (Quadrature.simpson ~n:4 (fun x -> (2. *. (x ** 3.)) -. x) (-1.) 1.)

let test_simpson_odd_n () =
  (* Odd n is rounded up to even; result must still be right. *)
  check_float ~eps:1e-6 "sin over [0,pi]" 2.
    (Quadrature.simpson ~n:101 sin 0. Float.pi)

let test_adaptive_simpson () =
  check_float ~eps:1e-9 "sin" 2. (Quadrature.adaptive_simpson sin 0. Float.pi);
  (* A peaked integrand. *)
  let f x = 1. /. ((0.01 +. ((x -. 0.5) ** 2.)) *. Float.pi) in
  let exact = (atan (0.5 /. 0.1) -. atan (-0.5 /. 0.1)) /. (0.1 *. Float.pi) in
  check_close ~rel:1e-7 "peaked" exact (Quadrature.adaptive_simpson ~tol:1e-12 f 0. 1.)

let prop_interp_exact_on_linear =
  qcheck "interp is exact on linear functions"
    QCheck.(pair (pos_float_arb (-5.) 5.) (pos_float_arb (-5.) 5.))
    (fun (a, b) ->
      let xs = [| 0.; 1.; 2.; 5. |] in
      let ys = Array.map (fun x -> (a *. x) +. b) xs in
      let t = Interp.create ~xs ~ys in
      List.for_all
        (fun x -> Float.abs (Interp.eval t x -. ((a *. x) +. b)) < 1e-9)
        [ 0.3; 1.7; 4.2 ])

let prop_simpson_matches_adaptive =
  qcheck ~count:50 "fixed and adaptive simpson agree on smooth f"
    (pos_float_arb 0.5 3.)
    (fun a ->
      let f x = exp (-.a *. x) *. cos x in
      let fixed = Quadrature.simpson ~n:2048 f 0. 2. in
      let adaptive = Quadrature.adaptive_simpson ~tol:1e-12 f 0. 2. in
      Float.abs (fixed -. adaptive) < 1e-8)

let suite =
  [
    case "interp eval" test_interp_eval;
    case "interp inverse" test_interp_inverse;
    case "interp inverse on flat" test_interp_inverse_flat;
    case "interp validation" test_interp_validation;
    case "trapezoid sampled" test_trapezoid_sampled;
    case "trapezoid function" test_trapezoid_function;
    case "simpson exact on cubics" test_simpson_exact_cubics;
    case "simpson odd n" test_simpson_odd_n;
    case "adaptive simpson" test_adaptive_simpson;
    prop_interp_exact_on_linear;
    prop_simpson_matches_adaptive;
  ]
