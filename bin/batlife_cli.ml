(* batlife: command-line front end.

   Subcommands:
     kibam       analytic KiBaM lifetime under constant / square-wave load
     lifetime    lifetime CDF of a workload model via the KiBaMRM algorithm
     simulate    Monte-Carlo lifetime estimation
     experiment  reproduce the paper's tables and figures *)

open Cmdliner
open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
open Batlife_output
module Error = Batlife_robust.Error
module Validate = Batlife_robust.Validate
module Solver_opts = Batlife_ctmc.Solver_opts
module Progress = Batlife_numerics.Progress

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)

let capacity_arg =
  Arg.(
    value
    & opt float 7200.
    & info [ "capacity"; "C" ] ~docv:"CHARGE"
        ~doc:"Battery capacity (charge units, e.g. As or mAh).")

let c_arg =
  Arg.(
    value
    & opt float 0.625
    & info [ "c"; "available-fraction" ] ~docv:"FRACTION"
        ~doc:"Available-charge fraction c in (0,1].")

let k_arg =
  Arg.(
    value
    & opt float 4.5e-5
    & info [ "k"; "diffusion" ] ~docv:"RATE"
        ~doc:"KiBaM diffusion constant k.")

let strictness_arg =
  Arg.(
    value
    & vflag `Strict
        [
          ( `Strict,
            info [ "strict" ]
              ~doc:
                "Fail on pedantic model findings as well as hard errors \
                 (default)." );
          ( `Lenient,
            info [ "lenient" ]
              ~doc:"Downgrade pedantic model findings to warnings." );
        ])

let battery_term =
  let make capacity c k strictness =
    Validate.run ~what:"KiBaM parameters"
      (Validate.kibam ~capacity ~c ~k ());
    let pedantic =
      Validate.kibam_pedantic ~subject:"pedantic finding" ~capacity ~c ~k ()
    in
    (match (strictness, pedantic) with
    | _, [] | `Lenient, _ ->
        List.iter
          (fun v ->
            Printf.eprintf "batlife: warning: %s\n" (Validate.message v))
          pedantic
    | `Strict, vs ->
        raise
          (Error.Error
             (Error.Invalid_model
                {
                  what = "KiBaM parameters";
                  violations =
                    Validate.messages vs
                    @ [ "pass --lenient to downgrade pedantic findings to \
                         warnings" ];
                })));
    Kibam.params ~capacity ~c ~k
  in
  Term.(const make $ capacity_arg $ c_arg $ k_arg $ strictness_arg)

let model_arg =
  let models = [ ("simple", `Simple); ("burst", `Burst); ("onoff", `Onoff) ] in
  Arg.(
    value
    & opt (enum models) `Simple
    & info [ "model"; "m" ] ~docv:"MODEL"
        ~doc:"Workload model: $(b,simple), $(b,burst) or $(b,onoff).")

let frequency_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "frequency"; "f" ] ~docv:"HZ"
        ~doc:"Toggle frequency of the on/off model (per time unit).")

let on_current_arg =
  Arg.(
    value
    & opt float 0.96
    & info [ "on-current" ] ~docv:"I"
        ~doc:"Current drawn in the on state of the on/off model.")

let erlang_k_arg =
  Arg.(
    value
    & opt int 1
    & info [ "erlang-k" ] ~docv:"K"
        ~doc:"Erlang phases of the on/off sojourns (K=1: exponential).")

let workload_of = function
  | `Simple -> Simple.model ()
  | `Burst -> Burst.model ()
  | `Onoff -> assert false

let workload_term =
  let make model frequency on_current erlang_k =
    match model with
    | `Onoff -> Onoff.model ~frequency ~k:erlang_k ~on_current ()
    | other -> workload_of other
  in
  Term.(
    const make $ model_arg $ frequency_arg $ on_current_arg $ erlang_k_arg)

let times_term =
  let make t_max points =
    if t_max <= 0. then `Error (false, "horizon must be positive")
    else if points < 2 then `Error (false, "need at least 2 points")
    else
      `Ok
        (Array.init points (fun i ->
             t_max /. float_of_int points *. float_of_int (i + 1)))
  in
  let t_max =
    Arg.(
      value
      & opt float 30.
      & info [ "horizon"; "T" ] ~docv:"TIME"
          ~doc:"Largest time point of the CDF grid.")
  and points =
    Arg.(
      value
      & opt int 60
      & info [ "points" ] ~docv:"N" ~doc:"Number of grid points.")
  in
  Term.(ret (const make $ t_max $ points))

let plot_arg =
  Arg.(value & flag & info [ "plot" ] ~doc:"Render an ASCII plot.")

(* Numerical solver options, shared by every CTMC-backed subcommand
   and collapsed into one Solver_opts.t value. *)
let solver_opts_term =
  let make accuracy unif_rate convergence_tol solver_tol jobs =
    (* --jobs also sets the process-wide default so code paths that
       build their own Solver_opts (sessions, experiments) follow it.
       Requests beyond the core count are clamped (Pool.clamp_jobs
       records a Diag note): oversubscribing domains is a measured
       slowdown, never a speedup. *)
    let jobs =
      match jobs with
      | Some j when j < 1 ->
          Batlife_numerics.Diag.invalid_model ~what:"--jobs"
            [ Printf.sprintf "need at least 1 worker domain, got %d" j ]
      | Some j ->
          let j = Batlife_numerics.Pool.clamp_jobs j in
          Batlife_numerics.Pool.set_default_jobs j;
          Some j
      | None -> None
    in
    Solver_opts.make ~accuracy ?unif_rate ~convergence_tol ?linear_tol:solver_tol
      ?jobs ()
  in
  let accuracy =
    Arg.(
      value
      & opt float Solver_opts.default.Solver_opts.accuracy
      & info [ "accuracy" ] ~docv:"EPS"
          ~doc:"Poisson truncation accuracy of the uniformisation sweeps.")
  and unif_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "unif-rate" ] ~docv:"Q"
          ~doc:
            "Uniformisation rate override (must be at least the largest \
             exit rate; default: the generator's own rate).")
  and convergence_tol =
    Arg.(
      value
      & opt float Solver_opts.default.Solver_opts.convergence_tol
      & info [ "convergence-tol" ] ~docv:"EPS"
          ~doc:
            "Early-stationarity threshold of the sweeps (L-infinity \
             distance of successive iterates).")
  and solver_tol =
    Arg.(
      value
      & opt (some float) None
      & info [ "solver-tol" ] ~docv:"EPS"
          ~doc:
            "Residual tolerance of the linear (Gauss-Seidel) solves \
             behind exact means and unbounded reachability (default: \
             per-solver).")
  and jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~env:(Cmd.Env.info "BATLIFE_JOBS")
          ~doc:
            "Worker domains of the parallel uniformisation kernel and the \
             experiment fan-out (default: the machine's recommended domain \
             count). Results are bitwise identical for every value; 1 \
             forces the sequential path.")
  in
  Term.(
    const make $ accuracy $ unif_rate $ convergence_tol $ solver_tol $ jobs)

(* Resilience flags, shared by the solver-backed subcommands: wall
   clock and work budgets (installed as the process-wide ambient
   Budget), retries, and checkpoint/resume.  The SIGINT handler points
   at the same budget: the first Ctrl-C requests cooperative
   cancellation — loops finish their current step, flush checkpoints
   and exit through the structured Cancelled error (code 8) — and a
   second Ctrl-C aborts hard with the conventional 130. *)
module Budget = Batlife_numerics.Budget

type resilience = {
  checkpoint : string option;
  checkpoint_interval : int;
  resume : string option;
  max_retries : int;
}

let install_sigint budget =
  let interrupted = ref false in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if !interrupted then Stdlib.exit 130
         else begin
           interrupted := true;
           Budget.cancel budget;
           prerr_endline
             "batlife: interrupt: finishing the current step and flushing \
              checkpoints (Ctrl-C again aborts hard)"
         end))

let resilience_term =
  let make deadline max_sweeps max_products cancel_after max_retries
      checkpoint checkpoint_interval resume =
    if checkpoint_interval < 1 then
      Batlife_numerics.Diag.invalid_model ~what:"--checkpoint-interval"
        [
          Printf.sprintf "need a positive step count, got %d"
            checkpoint_interval;
        ];
    let budget =
      Budget.create ?wall_s:deadline ?max_sweeps ?max_products ?cancel_after ()
    in
    Budget.set_ambient budget;
    install_sigint budget;
    Batlife_numerics.Pool.set_section_retries max_retries;
    { checkpoint; checkpoint_interval; resume; max_retries }
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget.  When it expires the solvers stop at the \
             next step boundary, flush any pending checkpoint, and the \
             command exits with the structured budget-exhausted error \
             (code 7).")
  and max_sweeps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sweeps" ] ~docv:"N"
          ~doc:"Budget of uniformisation power sweeps.")
  and max_products =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-products" ] ~docv:"N"
          ~doc:
            "Budget of units of work: vector-matrix products, solver \
             iterations, ODE steps, Monte-Carlo replications.")
  and cancel_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "cancel-after" ] ~docv:"N"
          ~doc:
            "Testing knob: trip cooperative cancellation (as if Ctrl-C was \
             pressed) after $(docv) budget polls — a deterministic \
             interrupted-mid-run for the test suite (exit code 8).")
  and max_retries =
    Arg.(
      value
      & opt int 0
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Retries (with exponential backoff) for a failing parallel \
             experiment task, and re-executions of a kernel section whose \
             worker crashed mid-sweep (pool supervision).  Budget \
             exhaustion and cancellation are never retried.")
  and checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically snapshot progress to $(docv) (written \
             atomically).  For $(b,lifetime): the uniformisation sweep \
             state; for $(b,simulate): the replication batch; for \
             $(b,experiment): the per-figure completion map.")
  and checkpoint_interval =
    Arg.(
      value
      & opt int 100
      & info [ "checkpoint-interval" ] ~docv:"STEPS"
          ~doc:
            "Snapshot every $(docv) completed steps (sweep steps or \
             replications).")
  and resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by $(b,--checkpoint).  The \
             resumed computation is bitwise identical to an uninterrupted \
             one; a checkpoint from a different model or grid is \
             rejected.")
  in
  Term.(
    const make $ deadline $ max_sweeps $ max_products $ cancel_after
    $ max_retries $ checkpoint $ checkpoint_interval $ resume)

(* Observability flags, shared by the solver-backed subcommands.  The
   term switches the process-wide Telemetry collector on and records
   where the reports should go; the reports themselves are emitted
   once, after Cmd.eval returns (so they cover the whole run,
   including time spent after the subcommand's own output). *)
module Telemetry = Batlife_numerics.Telemetry

type telemetry_config = {
  mutable profile : bool;
  mutable metrics_out : string option;
  mutable trace_out : string option;
}

let telemetry_config =
  { profile = false; metrics_out = None; trace_out = None }

let telemetry_term =
  let make profile metrics_out trace_out =
    telemetry_config.profile <- profile;
    telemetry_config.metrics_out <- metrics_out;
    telemetry_config.trace_out <- trace_out;
    if profile || metrics_out <> None || trace_out <> None then
      Telemetry.enable ()
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Record telemetry and print a per-phase summary table (spans, \
             counters, histograms) on stderr when the command exits.")
  and metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Record telemetry and write a JSON metrics dump (counters, \
             gauges, histograms, span roll-up) to $(docv) on exit.")
  and trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record telemetry and write the spans to $(docv) in Chrome \
             trace_event JSON, loadable in about:tracing or Perfetto.")
  in
  Term.(const make $ profile $ metrics_out $ trace_out)

let report_telemetry () =
  if Telemetry.enabled () then begin
    let snap = Telemetry.snapshot () in
    (match telemetry_config.metrics_out with
    | Some path ->
        Telemetry.write_metrics ~path snap;
        Printf.eprintf "batlife: wrote metrics to %s\n" path
    | None -> ());
    (match telemetry_config.trace_out with
    | Some path ->
        Telemetry.write_trace ~path snap;
        Printf.eprintf "batlife: wrote trace to %s\n" path
    | None -> ());
    if telemetry_config.profile then Metrics_report.print snap
  end

(* ------------------------------------------------------------------ *)
(* kibam                                                               *)

let kibam_cmd =
  let run battery load frequency duty =
    let profile =
      match frequency with
      | None -> Load_profile.constant load
      | Some f ->
          if duty = 0.5 then Load_profile.square_wave ~frequency:f ~on_load:load
          else
            Load_profile.duty_cycle_wave ~period:(1. /. f) ~duty ~on_load:load
    in
    (match Kibam.lifetime battery profile with
    | Some t ->
        Printf.printf "lifetime: %.6g time units (%.2f minutes if seconds)\n" t
          (Units.seconds_to_minutes t)
    | None -> print_endline "battery does not empty within the horizon");
    Printf.printf "average load: %.6g\n" (Load_profile.average_load profile);
    Printf.printf "ideal-battery lifetime at average load: %.6g\n"
      (Ideal.lifetime ~capacity:battery.Kibam.capacity
         ~load:(Load_profile.average_load profile))
  in
  let load =
    Arg.(
      value
      & opt float 0.96
      & info [ "load"; "I" ] ~docv:"CURRENT" ~doc:"Discharge current.")
  and frequency =
    Arg.(
      value
      & opt (some float) None
      & info [ "square-wave" ] ~docv:"HZ"
          ~doc:"Use a square wave of this frequency instead of a constant load.")
  and duty =
    Arg.(
      value
      & opt float 0.5
      & info [ "duty" ] ~docv:"FRACTION" ~doc:"On fraction of the square wave.")
  in
  Cmd.v
    (Cmd.info "kibam" ~doc:"Analytic KiBaM lifetime under a deterministic load")
    Term.(const run $ battery_term $ load $ frequency $ duty)

(* ------------------------------------------------------------------ *)
(* lifetime                                                            *)

let print_cdf ~plot name times probabilities =
  Array.iteri
    (fun i t -> Printf.printf "%g\t%.6f\n" t probabilities.(i))
    times;
  if plot then
    Ascii_plot.print ~x_label:"t" ~y_label:"Pr[empty]"
      [ Series.create ~name ~xs:times ~ys:probabilities ]

let lifetime_cmd =
  let run battery workload times delta opts resil plot () =
    let opts = { opts with Solver_opts.max_retries = resil.max_retries } in
    let model = Kibamrm.create ~workload ~battery in
    if resil.checkpoint <> None || resil.resume <> None then begin
      (* The checkpointable sweep: same resolved rate and windows as
         the session path, so the curve is bitwise identical. *)
      let checkpoint =
        Option.map (fun p -> (p, resil.checkpoint_interval)) resil.checkpoint
      in
      let curve =
        Lifetime.cdf_resumable ~opts ?checkpoint ?resume:resil.resume ~delta
          ~times model
      in
      Printf.eprintf
        "expanded CTMC: %d states, %d nonzeros, %d iterations (q = %g)\n"
        curve.Lifetime.states curve.Lifetime.nnz curve.Lifetime.iterations
        curve.Lifetime.uniformisation_rate;
      print_cdf ~plot "KiBaMRM" times curve.Lifetime.probabilities;
      Printf.eprintf "mean lifetime (truncated): %.6g\n" (Lifetime.mean curve)
    end
    else begin
      (* One expanded model serves the CDF sweep and the first-passage
         mean; the CDF goes through the session engine. *)
      let d = Discretized.build ~delta model in
      let curve = Lifetime.cdf_discretized ~opts ~delta d ~times in
      Printf.eprintf
        "expanded CTMC: %d states, %d nonzeros, %d iterations (q = %g)\n"
        curve.Lifetime.states curve.Lifetime.nnz curve.Lifetime.iterations
        curve.Lifetime.uniformisation_rate;
      print_cdf ~plot "KiBaMRM" times curve.Lifetime.probabilities;
      Printf.eprintf "mean lifetime (truncated): %.6g\n" (Lifetime.mean curve);
      Printf.eprintf "mean lifetime (exact, first passage): %.6g\n"
        (Discretized.expected_lifetime ~opts d)
    end
  in
  let delta =
    Arg.(
      value
      & opt float 5.
      & info [ "delta" ] ~docv:"STEP" ~doc:"Charge discretisation step.")
  in
  Cmd.v
    (Cmd.info "lifetime"
       ~doc:"Battery lifetime CDF via the Markovian approximation")
    Term.(
      const run $ battery_term $ workload_term $ times_term $ delta
      $ solver_opts_term $ resilience_term $ plot_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let run battery workload times runs seed resil plot =
    let model = Kibamrm.create ~workload ~battery in
    let seed64 = Int64.of_int seed in
    let resume =
      match resil.resume with
      | None -> None
      | Some path -> (
          (* Corrupt snapshot: quarantine and run the batch from
             replication 0 instead of aborting. *)
          match Checkpoint.load_for_resume ~path with
          | None -> None
          | Some (Checkpoint.Montecarlo m) ->
              if m.Checkpoint.mc_seed <> seed64 then
                Batlife_numerics.Diag.invalid_model
                  ~what:("checkpoint " ^ path)
                  [
                    Printf.sprintf
                      "snapshot was taken with seed %Ld but this run uses %Ld"
                      m.Checkpoint.mc_seed seed64;
                  ];
              Some
                {
                  Montecarlo.mp_target = m.Checkpoint.mc_target;
                  mp_done = m.Checkpoint.mc_done;
                  mp_censored = m.Checkpoint.mc_censored;
                  mp_died = m.Checkpoint.mc_died;
                  mp_rng = m.Checkpoint.mc_rng;
                }
          | Some (Checkpoint.Cdf _ | Checkpoint.Experiments _) ->
              Batlife_numerics.Diag.invalid_model ~what:("checkpoint " ^ path)
                [
                  "checkpoint holds a different computation kind, not a \
                   Monte-Carlo batch";
                ])
    in
    let progress =
      match resil.checkpoint with
      | None -> Progress.make ?resume ()
      | Some path ->
          let save (p : Montecarlo.progress) =
            Checkpoint.save ~path
              (Checkpoint.Montecarlo
                 {
                   Checkpoint.mc_seed = seed64;
                   mc_target = p.Montecarlo.mp_target;
                   mc_done = p.Montecarlo.mp_done;
                   mc_censored = p.Montecarlo.mp_censored;
                   mc_died = p.Montecarlo.mp_died;
                   mc_rng = p.Montecarlo.mp_rng;
                 })
          in
          Progress.make
            ~on_step:(Progress.every resil.checkpoint_interval save)
            ~on_interrupt:save ?resume ()
    in
    let est = Montecarlo.lifetime_cdf ~seed:seed64 ~runs ~progress model ~times in
    Printf.eprintf "replications: %d (censored: %d)\n" est.Montecarlo.runs
      est.Montecarlo.censored;
    print_cdf ~plot "simulation" times est.Montecarlo.cdf;
    if est.Montecarlo.censored = 0 && Array.length est.Montecarlo.samples > 0
    then begin
      let s = Stats.summarize est.Montecarlo.samples in
      Printf.eprintf "mean lifetime: %.6g (sd %.3g)\n" s.Stats.mean
        s.Stats.std_dev
    end
  in
  let runs =
    Arg.(
      value
      & opt int 1000
      & info [ "runs"; "n" ] ~docv:"N" ~doc:"Number of replications.")
  and seed =
    Arg.(
      value
      & opt int 195802
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (reproducible).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo battery lifetime estimation")
    Term.(
      const run $ battery_term $ workload_term $ times_term $ runs $ seed
      $ resilience_term $ plot_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let run battery path delta times opts plot () =
    let samples = Error.get_ok (Trace.load_samples_result path) in
    let profile = Error.get_ok (Trace.of_samples_result samples) in
    (* Deterministic replay. *)
    (match Kibam.lifetime battery profile with
    | Some t -> Printf.printf "trace replay: battery empty at %.6g\n" t
    | None ->
        print_endline "trace replay: battery survives the recorded trace");
    (* Statistical model + lifetime distribution. *)
    (match Trace.estimate_model samples with
        | exception Invalid_argument msg ->
            Printf.printf "no stochastic model estimated (%s)\n" msg
    | estimated ->
        Printf.printf "estimated %d-level workload model:\n"
          (Array.length estimated.Trace.levels);
        Array.iteri
          (fun i level ->
            Printf.printf "  level %d: current %g (occupancy %.3f)\n" i level
              estimated.Trace.occupancy.(i))
          estimated.Trace.levels;
        let model = Kibamrm.create ~workload:estimated.Trace.model ~battery in
        let curve = Lifetime.cdf ~opts ~delta ~times model in
        print_cdf ~plot "KiBaMRM (estimated model)" times
          curve.Lifetime.probabilities)
  in
  let path =
    Arg.(
      required
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Trace file with 'time,current' lines.")
  and delta =
    Arg.(
      value
      & opt float 5.
      & info [ "delta" ] ~docv:"STEP" ~doc:"Charge discretisation step.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a measured current trace and fit a workload model")
    Term.(
      const run $ battery_term $ path $ delta $ times_term $ solver_opts_term
      $ plot_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* pack                                                                *)

let pack_cmd =
  let open Batlife_scheduling in
  let run battery n load frequency slot =
    if n < 1 then `Error (false, "need at least one cell")
    else begin
      let profile =
        match frequency with
        | None -> Load_profile.constant load
        | Some f -> Load_profile.square_wave ~frequency:f ~on_load:load
      in
      let policies =
        [
          Policy.Sequential; Policy.Random 2024; Policy.Round_robin;
          Policy.Best_available;
        ]
      in
      let results =
        Scheduler.compare_policies ?slot ~policies ~battery ~n profile
      in
      Table.print
        ~header:[ "policy"; "lifetime"; "delivered"; "switches" ]
        (List.map
           (fun ((policy : Policy.t), (o : Scheduler.outcome)) ->
             [
               Policy.name policy;
               (match o.Scheduler.lifetime with
               | Some t -> Printf.sprintf "%.6g" t
               | None -> "survives");
               Printf.sprintf "%.6g" o.Scheduler.delivered;
               string_of_int o.Scheduler.switches;
             ])
           results);
      `Ok ()
    end
  in
  let n =
    Arg.(
      value & opt int 2
      & info [ "cells"; "n" ] ~docv:"N" ~doc:"Number of battery cells.")
  and load =
    Arg.(
      value
      & opt float 0.96
      & info [ "load"; "I" ] ~docv:"CURRENT" ~doc:"System load current.")
  and frequency =
    Arg.(
      value
      & opt (some float) None
      & info [ "square-wave" ] ~docv:"HZ"
          ~doc:"Square-wave load of this frequency instead of constant.")
  and slot =
    Arg.(
      value
      & opt (some float) None
      & info [ "slot" ] ~docv:"TIME"
          ~doc:"Scheduling decision slot (default: auto).")
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:"Compare battery-scheduling policies on a multi-cell pack")
    Term.(ret (const run $ battery_term $ n $ load $ frequency $ slot))

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let run ids out_dir runs full opts resil () =
    let open Batlife_experiments in
    let opts = { opts with Solver_opts.max_retries = resil.max_retries } in
    let options =
      {
        Runner.default_options with
        out_dir;
        runs;
        full;
        opts;
        checkpoint = resil.checkpoint;
      }
    in
    match ids with
    | [] ->
        Runner.run_all ~options ();
        `Ok ()
    | ids -> (
        match Runner.run_many ~options ids with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg))
  in
  let ids =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (table1, fig2, fig7..fig11); all if omitted.")
  and out_dir =
    Arg.(
      value
      & opt string "results"
      & info [ "out-dir"; "o" ] ~docv:"DIR" ~doc:"Artefact directory.")
  and runs =
    Arg.(
      value
      & opt int 1000
      & info [ "runs" ] ~docv:"N" ~doc:"Monte-Carlo replications.")
  and full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Include the expensive Delta=10,5 two-well refinements.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce the paper's tables and figures")
    Term.(
      ret
        (const run $ ids $ out_dir $ runs $ full $ solver_opts_term
       $ resilience_term $ telemetry_term))

(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run socket cache_capacity cache_max_bytes max_batch max_connections
      backlog queue drain_s max_frame_bytes read_idle_s write_timeout_s
      max_strikes jobs access_log slow_log slow_query_ms () =
    (match jobs with
    | Some j when j < 1 ->
        Batlife_numerics.Diag.invalid_model ~what:"--jobs"
          [ Printf.sprintf "need at least 1 worker domain, got %d" j ]
    | Some j ->
        Batlife_numerics.Pool.set_default_jobs
          (Batlife_numerics.Pool.clamp_jobs j)
    | None -> ());
    if slow_query_ms < 0. then
      Batlife_numerics.Diag.invalid_model ~what:"--slow-query-ms"
        [ Printf.sprintf "need a non-negative threshold, got %g" slow_query_ms ];
    let positive what v =
      if v <= 0 then
        Batlife_numerics.Diag.invalid_model ~what
          [ Printf.sprintf "need a positive value, got %d" v ]
    and positive_f what v =
      if not (v > 0.) then
        Batlife_numerics.Diag.invalid_model ~what
          [ Printf.sprintf "need a positive value, got %g" v ]
    in
    positive "--backlog" backlog;
    if queue < 0 then
      Batlife_numerics.Diag.invalid_model ~what:"--queue"
        [ Printf.sprintf "need a non-negative capacity, got %d" queue ];
    positive "--max-frame-bytes" max_frame_bytes;
    positive "--max-strikes" max_strikes;
    Option.iter (positive "--cache-max-bytes") cache_max_bytes;
    positive_f "--drain-s" drain_s;
    positive_f "--read-idle-s" read_idle_s;
    positive_f "--write-timeout-s" write_timeout_s;
    let limits =
      {
        Batlife_service.Server.max_frame_bytes;
        read_idle_s;
        write_timeout_s;
        max_strikes;
        queue;
      }
    in
    let obs =
      Batlife_service.Obs.create ?access_log ?slow_log
        ~slow_threshold_s:(slow_query_ms /. 1000.) ()
    in
    let service =
      Batlife_service.Service.create ~cache_capacity ?cache_max_bytes ~obs ()
    in
    let drain = Batlife_service.Drain.create ~drain_s () in
    (* SIGTERM and the first Ctrl-C both request a graceful drain: stop
       accepting, finish (or deadline-cancel) in-flight batches, flush
       the log appenders, unlink the socket and exit 0.  A second
       Ctrl-C aborts hard with the conventional 130. *)
    let interrupted = ref false in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Batlife_service.Drain.request drain));
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           if !interrupted then Stdlib.exit 130
           else begin
             interrupted := true;
             Batlife_service.Drain.request drain;
             prerr_endline
               "batlife: serve: draining (finishing in-flight batches; \
                Ctrl-C again aborts hard)"
           end));
    Fun.protect
      ~finally:(fun () ->
        Batlife_service.Drain.stop drain;
        Batlife_service.Obs.close obs)
      (fun () ->
        match socket with
        | None ->
            Batlife_service.Server.serve_stdio ~limits ~drain ~max_batch
              service
        | Some path ->
            Batlife_service.Server.serve_unix ~limits ~drain ~max_batch
              ?max_connections ~backlog service ~path)
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of serving \
             stdin/stdout.")
  and cache_capacity =
    Arg.(
      value & opt int 32
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:
            "Models interned in the fingerprint session cache (LRU beyond \
             this).")
  and cache_max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Resident-byte budget for the session cache (estimated; LRU \
             eviction after each batch keeps the cache under it).  \
             Default: unbounded — only $(b,--cache-capacity) applies.")
  and max_batch =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Upper bound on requests answered as one batch (same-model \
             requests in a batch share one sweep).")
  and backlog =
    Arg.(
      value & opt int 64
      & info [ "backlog" ] ~docv:"N"
          ~doc:"With $(b,--socket): the listen(2) backlog.")
  and queue =
    Arg.(
      value & opt int 128
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Pending-request queue capacity per connection.  Frames drained \
             beyond the batch in hand and this queue are shed with a \
             structured $(b,overloaded) error (code 9) carrying a \
             retry_after_s hint.")
  and drain_s =
    Arg.(
      value & opt float 5.
      & info [ "drain-s" ] ~docv:"SECONDS"
          ~doc:
            "Graceful-drain deadline.  On SIGTERM (or the first Ctrl-C) the \
             server stops accepting, finishes in-flight batches, and past \
             this deadline cancels them into structured Cancelled responses; \
             then flushes logs, unlinks the socket and exits 0.")
  and max_frame_bytes =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame-bytes" ] ~docv:"BYTES"
          ~doc:
            "Per-connection frame-size guard: a request line longer than \
             this gets a structured error and the connection is dropped.")
  and read_idle_s =
    Arg.(
      value & opt float 300.
      & info [ "read-idle-s" ] ~docv:"SECONDS"
          ~doc:
            "Idle-read guard: drop a connection that sends nothing for this \
             long while the server is waiting for a frame.")
  and write_timeout_s =
    Arg.(
      value & opt float 30.
      & info [ "write-timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Write guard: drop a connection that will not accept a response \
             within this long (a stalled client cannot wedge the server).")
  and max_strikes =
    Arg.(
      value & opt int 5
      & info [ "max-strikes" ] ~docv:"N"
          ~doc:
            "Malformed-frame strike limit: after $(docv) unparseable frames \
             the connection is dropped (each still gets its structured \
             error response first).")
  and max_connections =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "With $(b,--socket): exit after serving $(docv) connections \
             (default: serve forever).")
  and jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~env:(Cmd.Env.info "BATLIFE_JOBS")
          ~doc:
            "Worker domains for fanning independent models out and for the \
             parallel sweep kernel.")
  and access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH"
          ~doc:
            "Append one JSONL line (schema batlife.access/1) per request: \
             request id, query kind, cache status, outcome, latency.")
  and slow_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"PATH"
          ~doc:
            "Append a JSONL entry (schema batlife.slow/1) for every request \
             slower than $(b,--slow-query-ms), with a per-phase span \
             breakdown (phases need $(b,--profile)).")
  and slow_query_ms =
    Arg.(
      value
      & opt float 1000.
      & info [ "slow-query-ms" ] ~docv:"MS"
          ~doc:"Slow-query threshold for $(b,--slow-log), milliseconds.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running lifetime-query service (line-delimited JSON, \
          batlife.query/1)")
    Term.(
      const run $ socket $ cache_capacity $ cache_max_bytes $ max_batch
      $ max_connections $ backlog $ queue $ drain_s $ max_frame_bytes
      $ read_idle_s $ write_timeout_s $ max_strikes $ jobs $ access_log
      $ slow_log $ slow_query_ms $ telemetry_term)

(* ------------------------------------------------------------------ *)

(* [batlife stats]: scrape a running [batlife serve --socket] daemon
   over the query protocol's admin kinds.  The output is the payload
   itself — the stats JSON, the Prometheus text, or the health JSON —
   so it pipes straight into jq or a node-exporter textfile. *)
let stats_cmd =
  let module Query = Batlife_service.Query in
  let module Json = Batlife_numerics.Json in
  let read_line_fd fd =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n ->
          let s = Bytes.sub_string chunk 0 n in
          (match String.index_opt s '\n' with
          | Some i ->
              Buffer.add_string buf (String.sub s 0 i);
              Buffer.contents buf
          | None ->
              Buffer.add_string buf s;
              go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let io_error ~socket message =
    Batlife_numerics.Diag.fail
      (Batlife_numerics.Diag.Parse_error
         { source = socket; line = 0; field = None; message })
  in
  let run socket probe () =
    let payload =
      match probe with
      | "stats" -> Query.Server_stats
      | "prometheus" -> Query.Prometheus
      | "health" -> Query.Health
      | other ->
          Batlife_numerics.Diag.invalid_model ~what:"stats"
            [
              Printf.sprintf
                "unknown probe %S (expected stats, prometheus or health)" other;
            ]
    in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () -> ()
        | exception Unix.Unix_error (err, _, _) ->
            io_error ~socket
              (Printf.sprintf "cannot connect: %s" (Unix.error_message err)));
        let req =
          Query.request_to_line
            { Query.id = "admin"; model = None; payload; deadline_s = None }
        in
        let b = Bytes.of_string req in
        let rec write_all off =
          if off < Bytes.length b then
            match Unix.write fd b off (Bytes.length b - off) with
            | n -> write_all (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
        in
        write_all 0;
        let line = read_line_fd fd in
        if line = "" then io_error ~socket "server closed without answering";
        match Query.response_of_line ~source:socket line with
        | Error e -> io_error ~socket e.Query.message
        | Ok { Query.result = Error e; _ } ->
            Printf.eprintf "batlife: error: %s\n" e.Query.message;
            exit e.Query.code
        | Ok { Query.result = Ok (Query.Service_stats { stats }); _ } ->
            print_endline (Json.encode stats)
        | Ok { Query.result = Ok (Query.Text { text; _ }); _ } ->
            print_string text
        | Ok { Query.result = Ok (Query.Health_report { status; uptime_s }); _ }
          ->
            print_endline
              (Json.encode
                 (Json.Obj
                    [
                      ("status", Json.Str status);
                      ("uptime_s", Json.of_float uptime_s);
                    ]));
            if status <> "ok" then exit 1
        | Ok _ -> io_error ~socket "unexpected result kind for an admin query")
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the running $(b,batlife serve).")
  and probe =
    Arg.(
      value
      & opt string "stats"
      & info [ "probe" ] ~docv:"KIND"
          ~doc:
            "What to fetch: $(b,stats) (batlife.stats/1 JSON snapshot), \
             $(b,prometheus) (text exposition) or $(b,health) (readiness \
             probe; exits nonzero unless the service answers ok).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Scrape a running batlife serve daemon (stats, Prometheus, health)")
    Term.(const run $ socket $ probe $ telemetry_term)

(* ------------------------------------------------------------------ *)

(* Surface any recorded fallback events (solver or ODE degradations)
   on stderr, so a run that silently took a slower-but-safer path says
   so. *)
let report_diagnostics () =
  List.iter
    (fun (e : Batlife_numerics.Diag.event) ->
      if e.Batlife_numerics.Diag.fallback then
        Printf.eprintf "batlife: note: %s%s: %s\n"
          (match e.Batlife_numerics.Diag.ctx with
          | None -> ""
          | Some rid -> "[" ^ rid ^ "] ")
          e.Batlife_numerics.Diag.origin e.Batlife_numerics.Diag.detail)
    (Batlife_numerics.Diag.events ())

let () =
  (* BATLIFE_DEBUG=1 enables debug logging of the numerical engines
     (generator sizes, sweep iteration counts). *)
  if Sys.getenv_opt "BATLIFE_DEBUG" <> None then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let doc = "battery lifetime distributions (Cloth et al., DSN 2007)" in
  (* The structured-error exit codes, documented once for the whole
     group; the README and DESIGN tables mirror this list and a cram
     test greps it out of --help. *)
  let exits =
    Cmd.Exit.info 3 ~doc:"a model or parameter set failed validation."
    :: Cmd.Exit.info 4 ~doc:"malformed external input (trace, checkpoint, query frame)."
    :: Cmd.Exit.info 5 ~doc:"an iterative method failed to converge."
    :: Cmd.Exit.info 6
         ~doc:"numerical breakdown (NaN/Inf contamination, mass loss)."
    :: Cmd.Exit.info 7 ~doc:"a wall-clock deadline or work budget ran out."
    :: Cmd.Exit.info 8
         ~doc:"cooperative cancellation was requested (first Ctrl-C)."
    :: Cmd.Exit.info 9
         ~doc:"the query service shed the request under overload (retryable)."
    :: Cmd.Exit.info 130
         ~doc:"hard interrupt (second Ctrl-C, immediate abort)."
    :: Cmd.Exit.defaults
  in
  let info = Cmd.info "batlife" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        kibam_cmd; lifetime_cmd; simulate_cmd; trace_cmd; pack_cmd;
        experiment_cmd; serve_cmd; stats_cmd;
      ]
  in
  (* [~catch:false] lets structured errors reach this handler instead
     of cmdliner's generic backtrace printer; each error class maps to
     a distinct exit code (3-8, see [Error.exit_code]) — 7 for an
     exhausted budget/deadline, 8 for cooperative cancellation
     (Ctrl-C). *)
  let code =
    match Cmd.eval ~catch:false group with
    | code -> code
    | exception Error.Error e ->
        Printf.eprintf "batlife: error: %s\n" (Error.to_string e);
        Error.exit_code e
  in
  report_diagnostics ();
  report_telemetry ();
  exit code
