#!/usr/bin/env python3
"""Soak a live `batlife serve --socket` daemon with concurrent clients.

Usage: serve_soak.py SOCKET [DAEMON_PID]

Phase 1 (always): a mix of well-behaved and hostile clients runs
concurrently against the daemon -- bursty but valid query batches that
force admission sheds, garbage streams that trip the strike limit, an
oversized frame, and clients that vanish without reading.  Every
response line must decode as a versioned batlife.query/1 frame; sheds
must carry the code-9 overloaded error with a retry_after_s hint.

Phase 2 (only with DAEMON_PID): graceful-drain acceptance.  A repeat
CDF query is answered once for reference, then sent again with SIGTERM
delivered to the daemon while the batch is in flight; the in-flight
response must still arrive, byte-identical to the reference line.  The
caller is expected to `wait` on the daemon afterwards and assert exit
code 0 and the socket gone.

A JSON summary goes to stdout; the exit code is nonzero if any
invariant failed.  Stdlib only.
"""

import json
import os
import signal
import socket
import sys
import threading
import time

SOCKET_PATH = sys.argv[1]
DAEMON_PID = int(sys.argv[2]) if len(sys.argv) > 2 else None

MODEL = {
    "workload": {"kind": "onoff", "frequency": 1.0, "k": 1, "on_current": 0.96},
    "battery": {"capacity": 7200, "c": 1.0, "k": 0.0},
    "delta": 100,
}


def frame(rid, query, model=None, deadline_s=None):
    f = {"v": "batlife.query/1", "id": rid, "query": query}
    if model is not None:
        f["model"] = model
    if deadline_s is not None:
        f["deadline_s"] = deadline_s
    return json.dumps(f) + "\n"


def health(rid):
    return frame(rid, {"kind": "health"})


def cdf(rid, capacity=7200):
    model = dict(MODEL, battery=dict(MODEL["battery"], capacity=capacity))
    return frame(rid, {"kind": "cdf", "times": [5000, 10000]}, model=model)


def connect_with_retry(timeout=60.0, attempts=50):
    """Connect, retrying on a full listen backlog (EAGAIN/ECONNREFUSED
    from a serial accept loop under a burst) like a real client."""
    last = None
    for _ in range(attempts):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(timeout)
        try:
            s.connect(SOCKET_PATH)
            return s
        except (BlockingIOError, ConnectionRefusedError) as e:
            s.close()
            last = e
            time.sleep(0.05)
    raise last


def talk(payload, want_lines, timeout=60.0, linger=False):
    """One connection: send payload, read up to want_lines lines or EOF."""
    s = connect_with_retry(timeout)
    try:
        s.sendall(payload.encode())
        if not linger:
            s.shutdown(socket.SHUT_WR)
        buf = b""
        lines = []
        while len(lines) < want_lines:
            try:
                chunk = s.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf and len(lines) < want_lines:
                line, buf = buf.split(b"\n", 1)
                lines.append(line.decode())
        return lines
    finally:
        s.close()


LOCK = threading.Lock()
STATS = {
    "responses": 0,
    "ok": 0,
    "overloaded": 0,
    "structured_errors": 0,
    "unparseable": 0,
    "shed_without_retry_hint": 0,
    "client_failures": 0,
}


def classify(lines):
    with LOCK:
        for line in lines:
            STATS["responses"] += 1
            try:
                r = json.loads(line)
                assert r["v"] == "batlife.query/1"
            except Exception:
                STATS["unparseable"] += 1
                continue
            if r.get("ok"):
                STATS["ok"] += 1
            elif r.get("error", {}).get("kind") == "overloaded":
                STATS["overloaded"] += 1
                err = r["error"]
                if err.get("code") != 9 or "retry_after_s" not in err:
                    STATS["shed_without_retry_hint"] += 1
            else:
                STATS["structured_errors"] += 1


def client_failure(why):
    with LOCK:
        STATS["client_failures"] += 1
    print("soak client failed: %s" % why, file=sys.stderr)


def well_behaved(i):
    # A 10-frame burst per round: more than the daemon's batch + queue,
    # so some frames are served and the rest shed.  Every frame must be
    # answered either way.
    try:
        for round_no in range(3):
            burst = "".join(
                health("w%d-%d-%d" % (i, round_no, j)) for j in range(10)
            )
            classify(talk(burst, want_lines=10))
    except Exception as e:  # noqa: BLE001 -- any client crash is a finding
        client_failure("well_behaved %d: %r" % (i, e))


def model_client(i):
    # Real model work on per-client capacities: with a small
    # --cache-max-bytes every session overflows the budget and must be
    # evicted after serving, visibly in the stats scrape.
    try:
        for round_no in range(2):
            rid = "m%d-%d" % (i, round_no)
            classify(talk(cdf(rid, capacity=7200 + 300 * i), want_lines=1))
    except Exception as e:  # noqa: BLE001
        client_failure("model %d: %r" % (i, e))


def hostile_garbage(i):
    # Structured rejections, then the strike limit drops us: both fine,
    # but the frames that do come back must decode.
    try:
        lines = talk("not json\n" * 6, want_lines=7, timeout=30.0)
        classify(lines)
    except Exception as e:  # noqa: BLE001
        client_failure("garbage %d: %r" % (i, e))


def hostile_oversize(i):
    # The daemon may drop us mid-send (goodbye + close while we are
    # still streaming the endless line): EPIPE here is a pass.
    try:
        lines = talk("x" * (1 << 21), want_lines=1, timeout=30.0)
        classify(lines)
    except (BrokenPipeError, ConnectionResetError):
        pass
    except Exception as e:  # noqa: BLE001
        client_failure("oversize %d: %r" % (i, e))


def hostile_vanish(i):
    # Send work, close without reading a byte: the daemon must shrug
    # (EPIPE, not a crash); nothing to classify.
    try:
        s = connect_with_retry(10.0)
        s.sendall(cdf("vanish%d" % i).encode())
        s.close()
    except Exception as e:  # noqa: BLE001
        client_failure("vanish %d: %r" % (i, e))


def run_concurrent_phase():
    threads = []
    for i in range(3):
        threads.append(threading.Thread(target=well_behaved, args=(i,)))
    for i in range(2):
        threads.append(threading.Thread(target=model_client, args=(i,)))
    for i in range(2):
        threads.append(threading.Thread(target=hostile_garbage, args=(i,)))
    threads.append(threading.Thread(target=hostile_oversize, args=(0,)))
    for i in range(2):
        threads.append(threading.Thread(target=hostile_vanish, args=(i,)))
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def run_drain_phase():
    # Warm the model, take a reference response, then deliver SIGTERM
    # while the same query is in flight.  Within --drain-s the drain is
    # invisible: the response must arrive byte-identical.
    talk(cdf("drain", capacity=9999), want_lines=1)  # warm: miss
    ref = talk(cdf("drain", capacity=9999), want_lines=1)  # reference: hit
    if len(ref) != 1:
        client_failure("drain reference query got no response")
        return False

    s = connect_with_retry(60.0)
    try:
        s.sendall(cdf("drain", capacity=9999).encode())
        time.sleep(0.05)  # let the batch start
        os.kill(DAEMON_PID, signal.SIGTERM)
        buf = b""
        while b"\n" not in buf:
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
        drained = buf.split(b"\n", 1)[0].decode() if b"\n" in buf else None
    finally:
        s.close()
    if drained != ref[0]:
        client_failure(
            "drained response differs from reference:\n  ref: %s\n  got: %s"
            % (ref[0], drained)
        )
        return False
    return True


def main():
    run_concurrent_phase()
    drain_identical = None
    if DAEMON_PID is not None:
        drain_identical = run_drain_phase()

    summary = dict(STATS)
    summary["drain_identical"] = drain_identical
    print(json.dumps(summary, indent=2))

    failed = (
        STATS["unparseable"] > 0
        or STATS["shed_without_retry_hint"] > 0
        or STATS["client_failures"] > 0
        or STATS["ok"] == 0
        or STATS["overloaded"] == 0
        or (DAEMON_PID is not None and not drain_identical)
    )
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
